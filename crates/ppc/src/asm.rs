//! A two-pass assembler for the PowerPC-405 subset.
//!
//! The embedded control software of the Optical Flow Demonstrator (main
//! loop plus interrupt service routines) is written in this assembly
//! dialect, assembled to real PowerPC machine words, and executed by the
//! ISS — so the *same* software runs in every simulation configuration,
//! which is exactly the property ReSim preserves and Virtual Multiplexing
//! breaks.
//!
//! ## Dialect
//!
//! * one instruction, directive or `label:` per line; `#` or `;` comments
//! * registers `r0`..`r31`; immediates in decimal or `0x` hex, with `-`
//! * memory operands as `d(ra)`, e.g. `lwz r3, 8(r1)`
//! * branch targets are labels: `b loop`, `beq done`, `bl func`
//! * directives: `.word <v>`, `.space <bytes>`, `.equ NAME, <v>`
//! * pseudo-instructions: `li`, `lis`, `liw` (32-bit load, expands to
//!   `lis`+`ori`), `mr`, `nop`, `slwi`, `srwi`, `halt` (assembles the
//!   ISS trap)

use crate::insn::{Cond, Instr, Spr};
use std::collections::HashMap;
use std::fmt;

/// An assembled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Load address of the first word.
    pub base: u32,
    /// Machine words in memory order.
    pub words: Vec<u32>,
    /// Label/`.equ` symbol table (labels are absolute byte addresses).
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// The program image as little-endian bytes (matching
    /// `SharedMem::load_bytes`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Address of a label; panics with a clear message if missing.
    pub fn symbol(&self, name: &str) -> u32 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("no such symbol: {name}"))
    }
}

/// Assembly failure with source line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

struct Ctx<'a> {
    symbols: &'a HashMap<String, u32>,
    line: usize,
}

impl Ctx<'_> {
    fn reg(&self, t: &str) -> Result<u8, AsmError> {
        let t = t.trim();
        if let Some(n) = t.strip_prefix('r').and_then(|s| s.parse::<u8>().ok()) {
            if n < 32 {
                return Ok(n);
            }
        }
        Err(err(self.line, format!("expected register, got '{t}'")))
    }

    fn value(&self, t: &str) -> Result<i64, AsmError> {
        let t = t.trim();
        let (neg, body) = match t.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, t),
        };
        let v = if let Some(h) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            i64::from_str_radix(h, 16).ok()
        } else if body.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            body.parse::<i64>().ok()
        } else {
            self.symbols.get(body).map(|v| *v as i64)
        };
        match v {
            Some(v) => Ok(if neg { -v } else { v }),
            None => Err(err(self.line, format!("cannot evaluate '{t}'"))),
        }
    }

    fn simm16(&self, t: &str) -> Result<i16, AsmError> {
        let v = self.value(t)?;
        // Accept both signed (-32768..32767) and unsigned-looking
        // (0..65535) writings of a 16-bit field.
        if (-(1 << 15)..(1 << 16)).contains(&v) {
            Ok(v as u16 as i16)
        } else {
            Err(err(
                self.line,
                format!("immediate {v} does not fit 16 bits"),
            ))
        }
    }

    fn uimm16(&self, t: &str) -> Result<u16, AsmError> {
        let v = self.value(t)?;
        if (0..(1 << 16)).contains(&v) {
            Ok(v as u16)
        } else {
            Err(err(
                self.line,
                format!("immediate {v} does not fit unsigned 16 bits"),
            ))
        }
    }

    fn u5(&self, t: &str) -> Result<u8, AsmError> {
        let v = self.value(t)?;
        if (0..32).contains(&v) {
            Ok(v as u8)
        } else {
            Err(err(self.line, format!("{v} does not fit 5 bits")))
        }
    }

    fn dcrn(&self, t: &str) -> Result<u16, AsmError> {
        let v = self.value(t)?;
        if (0..(1 << 10)).contains(&v) {
            Ok(v as u16)
        } else {
            Err(err(
                self.line,
                format!("DCR number {v} does not fit 10 bits"),
            ))
        }
    }

    /// Parse `d(ra)`.
    fn mem(&self, t: &str) -> Result<(i16, u8), AsmError> {
        let t = t.trim();
        let open = t
            .find('(')
            .ok_or_else(|| err(self.line, format!("expected d(ra), got '{t}'")))?;
        if !t.ends_with(')') {
            return Err(err(self.line, format!("expected d(ra), got '{t}'")));
        }
        let d = if t[..open].trim().is_empty() {
            0
        } else {
            self.simm16(&t[..open])?
        };
        let ra = self.reg(&t[open + 1..t.len() - 1])?;
        Ok((d, ra))
    }

    fn spr(&self, t: &str) -> Result<Spr, AsmError> {
        match t.trim().to_ascii_lowercase().as_str() {
            "lr" => Ok(Spr::Lr),
            "ctr" => Ok(Spr::Ctr),
            "srr0" => Ok(Spr::Srr0),
            "srr1" => Ok(Spr::Srr1),
            other => Err(err(self.line, format!("unknown SPR '{other}'"))),
        }
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find(['#', ';']) {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Words a source line will occupy (pass 1). `None` = not an instruction.
fn line_words(mnemonic: &str, rest: &str) -> usize {
    match mnemonic {
        ".equ" => 0,
        ".word" => 1,
        ".space" => {
            let n: usize = rest.trim().parse().unwrap_or(0);
            n.div_ceil(4)
        }
        "liw" => 2,
        _ => 1,
    }
}

fn split_operands(rest: &str) -> Vec<String> {
    // Split on commas that are not inside parentheses (there are none in
    // this dialect, so a plain split suffices).
    rest.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Assemble `src` for loading at byte address `base`.
pub fn assemble(src: &str, base: u32) -> Result<Program, AsmError> {
    let mut symbols: HashMap<String, u32> = HashMap::new();

    // Pass 1: collect labels and .equ values.
    let mut pc = base;
    for (lineno, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut body = line;
        while let Some(colon) = body.find(':') {
            let (label, rest) = body.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            if symbols.insert(label.to_string(), pc).is_some() {
                return Err(err(lineno + 1, format!("duplicate label '{label}'")));
            }
            body = rest[1..].trim();
        }
        if body.is_empty() {
            continue;
        }
        let (mnemonic, rest) = body.split_once(char::is_whitespace).unwrap_or((body, ""));
        let mnemonic = mnemonic.to_ascii_lowercase();
        if mnemonic == ".equ" {
            let ops = split_operands(rest);
            if ops.len() != 2 {
                return Err(err(lineno + 1, ".equ NAME, value"));
            }
            let ctx = Ctx {
                symbols: &symbols,
                line: lineno + 1,
            };
            let v = ctx.value(&ops[1])?;
            symbols.insert(ops[0].clone(), v as u32);
        } else {
            pc += 4 * line_words(&mnemonic, rest) as u32;
        }
    }

    // Pass 2: encode.
    let mut words = Vec::new();
    let mut pc = base;
    for (lineno, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut body = line;
        while let Some(colon) = body.find(':') {
            let (label, rest) = body.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            body = rest[1..].trim();
        }
        if body.is_empty() {
            continue;
        }
        let (mnemonic, rest) = body.split_once(char::is_whitespace).unwrap_or((body, ""));
        let mnemonic = mnemonic.to_ascii_lowercase();
        let ops = split_operands(rest);
        let ctx = Ctx {
            symbols: &symbols,
            line: lineno + 1,
        };
        let n = ops.len();
        let want = |k: usize| -> Result<(), AsmError> {
            if n == k {
                Ok(())
            } else {
                Err(err(
                    lineno + 1,
                    format!("{mnemonic} takes {k} operands, got {n}"),
                ))
            }
        };
        let rel_target = |tok: &str, width_ok: &dyn Fn(i64) -> bool| -> Result<i64, AsmError> {
            let target = ctx.value(tok)?;
            let d = target - pc as i64;
            if !width_ok(d) {
                return Err(err(
                    lineno + 1,
                    format!("branch displacement {d} out of range"),
                ));
            }
            if d % 4 != 0 {
                return Err(err(
                    lineno + 1,
                    "branch target not word aligned".to_string(),
                ));
            }
            Ok(d)
        };
        let mut emit = |i: Instr| words.push(i.encode());
        match mnemonic.as_str() {
            ".word" => {
                want(1)?;
                words.push(ctx.value(&ops[0])? as u32);
            }
            ".space" => {
                want(1)?;
                let bytes = ctx.value(&ops[0])? as usize;
                words.resize(words.len() + bytes.div_ceil(4), 0);
            }
            ".equ" => continue,
            // --- pseudo-instructions ---
            "li" => {
                want(2)?;
                emit(Instr::Addi {
                    rt: ctx.reg(&ops[0])?,
                    ra: 0,
                    simm: ctx.simm16(&ops[1])?,
                });
            }
            "lis" => {
                want(2)?;
                emit(Instr::Addis {
                    rt: ctx.reg(&ops[0])?,
                    ra: 0,
                    simm: ctx.simm16(&ops[1])?,
                });
            }
            "liw" => {
                want(2)?;
                let rt = ctx.reg(&ops[0])?;
                let v = ctx.value(&ops[1])? as u32;
                emit(Instr::Addis {
                    rt,
                    ra: 0,
                    simm: (v >> 16) as i16,
                });
                emit(Instr::Ori {
                    ra: rt,
                    rs: rt,
                    uimm: (v & 0xFFFF) as u16,
                });
            }
            "mr" => {
                want(2)?;
                let ra = ctx.reg(&ops[0])?;
                let rs = ctx.reg(&ops[1])?;
                emit(Instr::Or { ra, rs, rb: rs });
            }
            "nop" => {
                want(0)?;
                emit(Instr::Ori {
                    ra: 0,
                    rs: 0,
                    uimm: 0,
                });
            }
            "slwi" => {
                want(3)?;
                let sh = ctx.u5(&ops[2])?;
                emit(Instr::Rlwinm {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    sh,
                    mb: 0,
                    me: 31 - sh,
                });
            }
            "srwi" => {
                want(3)?;
                let sh = ctx.u5(&ops[2])?;
                emit(Instr::Rlwinm {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    sh: (32 - sh) & 31,
                    mb: sh,
                    me: 31,
                });
            }
            "halt" => {
                want(0)?;
                emit(Instr::Trap);
            }
            // --- real instructions ---
            "addi" => {
                want(3)?;
                emit(Instr::Addi {
                    rt: ctx.reg(&ops[0])?,
                    ra: ctx.reg(&ops[1])?,
                    simm: ctx.simm16(&ops[2])?,
                });
            }
            "addis" => {
                want(3)?;
                emit(Instr::Addis {
                    rt: ctx.reg(&ops[0])?,
                    ra: ctx.reg(&ops[1])?,
                    simm: ctx.simm16(&ops[2])?,
                });
            }
            "ori" => {
                want(3)?;
                emit(Instr::Ori {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    uimm: ctx.uimm16(&ops[2])?,
                });
            }
            "oris" => {
                want(3)?;
                emit(Instr::Oris {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    uimm: ctx.uimm16(&ops[2])?,
                });
            }
            "xori" => {
                want(3)?;
                emit(Instr::Xori {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    uimm: ctx.uimm16(&ops[2])?,
                });
            }
            "andi." => {
                want(3)?;
                emit(Instr::AndiDot {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    uimm: ctx.uimm16(&ops[2])?,
                });
            }
            "add" => {
                want(3)?;
                emit(Instr::Add {
                    rt: ctx.reg(&ops[0])?,
                    ra: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "subf" => {
                want(3)?;
                emit(Instr::Subf {
                    rt: ctx.reg(&ops[0])?,
                    ra: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "sub" => {
                // sub rt, ra, rb == subf rt, rb, ra
                want(3)?;
                emit(Instr::Subf {
                    rt: ctx.reg(&ops[0])?,
                    ra: ctx.reg(&ops[2])?,
                    rb: ctx.reg(&ops[1])?,
                });
            }
            "mullw" => {
                want(3)?;
                emit(Instr::Mullw {
                    rt: ctx.reg(&ops[0])?,
                    ra: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "divwu" => {
                want(3)?;
                emit(Instr::Divwu {
                    rt: ctx.reg(&ops[0])?,
                    ra: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "neg" => {
                want(2)?;
                emit(Instr::Neg {
                    rt: ctx.reg(&ops[0])?,
                    ra: ctx.reg(&ops[1])?,
                });
            }
            "and" => {
                want(3)?;
                emit(Instr::And {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "or" => {
                want(3)?;
                emit(Instr::Or {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "xor" => {
                want(3)?;
                emit(Instr::Xor {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "slw" => {
                want(3)?;
                emit(Instr::Slw {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "srw" => {
                want(3)?;
                emit(Instr::Srw {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "rlwinm" => {
                want(5)?;
                emit(Instr::Rlwinm {
                    ra: ctx.reg(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                    sh: ctx.u5(&ops[2])?,
                    mb: ctx.u5(&ops[3])?,
                    me: ctx.u5(&ops[4])?,
                });
            }
            "cmpw" => {
                want(2)?;
                emit(Instr::Cmpw {
                    ra: ctx.reg(&ops[0])?,
                    rb: ctx.reg(&ops[1])?,
                });
            }
            "cmpwi" => {
                want(2)?;
                emit(Instr::Cmpwi {
                    ra: ctx.reg(&ops[0])?,
                    simm: ctx.simm16(&ops[1])?,
                });
            }
            "cmplw" => {
                want(2)?;
                emit(Instr::Cmplw {
                    ra: ctx.reg(&ops[0])?,
                    rb: ctx.reg(&ops[1])?,
                });
            }
            "cmplwi" => {
                want(2)?;
                emit(Instr::Cmplwi {
                    ra: ctx.reg(&ops[0])?,
                    uimm: ctx.uimm16(&ops[1])?,
                });
            }
            "lwz" | "lbz" | "stw" | "stb" => {
                want(2)?;
                let r = ctx.reg(&ops[0])?;
                let (d, ra) = ctx.mem(&ops[1])?;
                emit(match mnemonic.as_str() {
                    "lwz" => Instr::Lwz { rt: r, ra, d },
                    "lbz" => Instr::Lbz { rt: r, ra, d },
                    "stw" => Instr::Stw { rs: r, ra, d },
                    _ => Instr::Stb { rs: r, ra, d },
                });
            }
            "lwzx" => {
                want(3)?;
                emit(Instr::Lwzx {
                    rt: ctx.reg(&ops[0])?,
                    ra: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "stwx" => {
                want(3)?;
                emit(Instr::Stwx {
                    rs: ctx.reg(&ops[0])?,
                    ra: ctx.reg(&ops[1])?,
                    rb: ctx.reg(&ops[2])?,
                });
            }
            "b" | "bl" => {
                want(1)?;
                let d = rel_target(&ops[0], &|d| (-(1 << 25)..(1 << 25)).contains(&d))?;
                emit(Instr::B {
                    target: d as i32,
                    link: mnemonic == "bl",
                });
            }
            "beq" | "bne" | "blt" | "bgt" | "bge" | "ble" | "bdnz" => {
                want(1)?;
                let cond = match mnemonic.as_str() {
                    "beq" => Cond::Eq,
                    "bne" => Cond::Ne,
                    "blt" => Cond::Lt,
                    "bgt" => Cond::Gt,
                    "bge" => Cond::Ge,
                    "ble" => Cond::Le,
                    _ => Cond::Dnz,
                };
                let d = rel_target(&ops[0], &|d| (-(1 << 15)..(1 << 15)).contains(&d))?;
                emit(Instr::Bc {
                    cond,
                    target: d as i16,
                    link: false,
                });
            }
            "blr" => {
                want(0)?;
                emit(Instr::Blr);
            }
            "bctr" => {
                want(0)?;
                emit(Instr::Bctr);
            }
            "mtspr" => {
                want(2)?;
                emit(Instr::Mtspr {
                    spr: ctx.spr(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                });
            }
            "mfspr" => {
                want(2)?;
                emit(Instr::Mfspr {
                    rt: ctx.reg(&ops[0])?,
                    spr: ctx.spr(&ops[1])?,
                });
            }
            "mtlr" => {
                want(1)?;
                emit(Instr::Mtspr {
                    spr: Spr::Lr,
                    rs: ctx.reg(&ops[0])?,
                });
            }
            "mflr" => {
                want(1)?;
                emit(Instr::Mfspr {
                    rt: ctx.reg(&ops[0])?,
                    spr: Spr::Lr,
                });
            }
            "mtctr" => {
                want(1)?;
                emit(Instr::Mtspr {
                    spr: Spr::Ctr,
                    rs: ctx.reg(&ops[0])?,
                });
            }
            "mtdcr" => {
                want(2)?;
                emit(Instr::Mtdcr {
                    dcrn: ctx.dcrn(&ops[0])?,
                    rs: ctx.reg(&ops[1])?,
                });
            }
            "mfdcr" => {
                want(2)?;
                emit(Instr::Mfdcr {
                    rt: ctx.reg(&ops[0])?,
                    dcrn: ctx.dcrn(&ops[1])?,
                });
            }
            "mtmsr" => {
                want(1)?;
                emit(Instr::Mtmsr {
                    rs: ctx.reg(&ops[0])?,
                });
            }
            "mfcr" => {
                want(1)?;
                emit(Instr::Mfcr {
                    rt: ctx.reg(&ops[0])?,
                });
            }
            "mtcrf" => {
                // Full-mask form only: `mtcrf rS`.
                want(1)?;
                emit(Instr::Mtcrf {
                    rs: ctx.reg(&ops[0])?,
                });
            }
            "mfmsr" => {
                want(1)?;
                emit(Instr::Mfmsr {
                    rt: ctx.reg(&ops[0])?,
                });
            }
            "rfi" => {
                want(0)?;
                emit(Instr::Rfi);
            }
            "sync" => {
                want(0)?;
                emit(Instr::Sync);
            }
            "isync" => {
                want(0)?;
                emit(Instr::Isync);
            }
            other => return Err(err(lineno + 1, format!("unknown mnemonic '{other}'"))),
        }
        pc = base + 4 * words.len() as u32;
    }
    Ok(Program {
        base,
        words,
        symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Instr;

    #[test]
    fn labels_and_branches_resolve() {
        let p = assemble(
            "start: li r3, 0\nloop: addi r3, r3, 1\n cmpwi r3, 5\n bne loop\n halt\n",
            0x1000,
        )
        .unwrap();
        assert_eq!(p.symbol("start"), 0x1000);
        assert_eq!(p.symbol("loop"), 0x1004);
        // The bne at 0x100C targets 0x1004 => displacement -8.
        match Instr::decode(p.words[3]) {
            Instr::Bc { target, .. } => assert_eq!(target, -8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pseudo_instructions_expand() {
        let p = assemble("liw r4, 0xDEADBEEF\nmr r5, r4\nnop\nhalt\n", 0).unwrap();
        assert_eq!(p.words.len(), 5);
        assert_eq!(
            Instr::decode(p.words[0]),
            Instr::Addis {
                rt: 4,
                ra: 0,
                simm: 0xDEADu16 as i16
            }
        );
        assert_eq!(
            Instr::decode(p.words[1]),
            Instr::Ori {
                ra: 4,
                rs: 4,
                uimm: 0xBEEF
            }
        );
        assert_eq!(
            Instr::decode(p.words[2]),
            Instr::Or {
                ra: 5,
                rs: 4,
                rb: 4
            }
        );
        assert_eq!(Instr::decode(p.words[4]), Instr::Trap);
    }

    #[test]
    fn equ_and_word_and_space() {
        let p = assemble(
            ".equ MAGIC, 0x42\n.word MAGIC\nbuf: .space 8\nafter: .word 1\n",
            0x100,
        )
        .unwrap();
        assert_eq!(p.words[0], 0x42);
        assert_eq!(p.symbol("buf"), 0x104);
        assert_eq!(p.symbol("after"), 0x10C);
        assert_eq!(p.words[3], 1);
    }

    #[test]
    fn memory_operands() {
        let p = assemble("lwz r3, 8(r1)\nstw r3, -4(r2)\nlwz r4, (r5)\n", 0).unwrap();
        assert_eq!(Instr::decode(p.words[0]), Instr::Lwz { rt: 3, ra: 1, d: 8 });
        assert_eq!(
            Instr::decode(p.words[1]),
            Instr::Stw {
                rs: 3,
                ra: 2,
                d: -4
            }
        );
        assert_eq!(Instr::decode(p.words[2]), Instr::Lwz { rt: 4, ra: 5, d: 0 });
    }

    #[test]
    fn dcr_and_spr_access() {
        let p = assemble(
            ".equ ICAP_CTRL, 0x200\nmtdcr ICAP_CTRL, r3\nmfdcr r4, 0x201\nmflr r0\nmtlr r0\n",
            0,
        )
        .unwrap();
        assert_eq!(
            Instr::decode(p.words[0]),
            Instr::Mtdcr { dcrn: 0x200, rs: 3 }
        );
        assert_eq!(
            Instr::decode(p.words[1]),
            Instr::Mfdcr { rt: 4, dcrn: 0x201 }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));
        let e = assemble("addi r3, r4\n", 0).unwrap_err();
        assert!(e.msg.contains("3 operands"));
        let e = assemble("b nowhere\n", 0).unwrap_err();
        assert!(e.msg.contains("nowhere"));
        let e = assemble("x: nop\nx: nop\n", 0).unwrap_err();
        assert!(e.msg.contains("duplicate"));
        let e = assemble("li r3, 0x10000\n", 0).unwrap_err();
        assert!(e.msg.contains("16 bits"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# header\n  ; another\n\nnop # trailing\n", 0).unwrap();
        assert_eq!(p.words.len(), 1);
    }

    #[test]
    fn shift_pseudos_match_rlwinm() {
        let p = assemble("slwi r3, r4, 4\nsrwi r5, r6, 8\n", 0).unwrap();
        assert_eq!(
            Instr::decode(p.words[0]),
            Instr::Rlwinm {
                ra: 3,
                rs: 4,
                sh: 4,
                mb: 0,
                me: 27
            }
        );
        assert_eq!(
            Instr::decode(p.words[1]),
            Instr::Rlwinm {
                ra: 5,
                rs: 6,
                sh: 24,
                mb: 8,
                me: 31
            }
        );
    }

    #[test]
    fn to_bytes_is_little_endian() {
        let p = assemble(".word 0x11223344\n", 0).unwrap();
        assert_eq!(p.to_bytes(), vec![0x44, 0x33, 0x22, 0x11]);
    }
}
