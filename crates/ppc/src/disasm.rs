//! A small disassembler for trace output and debugging.

use crate::insn::{Cond, Instr};

/// Render one machine word as assembly text (round-trippable through the
/// assembler for the supported subset, modulo label names).
pub fn disassemble(w: u32) -> String {
    use Instr::*;
    match Instr::decode(w) {
        Addi { rt, ra: 0, simm } => format!("li r{rt}, {simm}"),
        Addi { rt, ra, simm } => format!("addi r{rt}, r{ra}, {simm}"),
        Addis { rt, ra: 0, simm } => format!("lis r{rt}, {simm}"),
        Addis { rt, ra, simm } => format!("addis r{rt}, r{ra}, {simm}"),
        Ori {
            ra: 0,
            rs: 0,
            uimm: 0,
        } => "nop".to_string(),
        Ori { ra, rs, uimm } => format!("ori r{ra}, r{rs}, {uimm:#x}"),
        Oris { ra, rs, uimm } => format!("oris r{ra}, r{rs}, {uimm:#x}"),
        Xori { ra, rs, uimm } => format!("xori r{ra}, r{rs}, {uimm:#x}"),
        AndiDot { ra, rs, uimm } => format!("andi. r{ra}, r{rs}, {uimm:#x}"),
        Add { rt, ra, rb } => format!("add r{rt}, r{ra}, r{rb}"),
        Subf { rt, ra, rb } => format!("subf r{rt}, r{ra}, r{rb}"),
        Mullw { rt, ra, rb } => format!("mullw r{rt}, r{ra}, r{rb}"),
        Divwu { rt, ra, rb } => format!("divwu r{rt}, r{ra}, r{rb}"),
        Neg { rt, ra } => format!("neg r{rt}, r{ra}"),
        And { ra, rs, rb } => format!("and r{ra}, r{rs}, r{rb}"),
        Or { ra, rs, rb } if rs == rb => format!("mr r{ra}, r{rs}"),
        Or { ra, rs, rb } => format!("or r{ra}, r{rs}, r{rb}"),
        Xor { ra, rs, rb } => format!("xor r{ra}, r{rs}, r{rb}"),
        Slw { ra, rs, rb } => format!("slw r{ra}, r{rs}, r{rb}"),
        Srw { ra, rs, rb } => format!("srw r{ra}, r{rs}, r{rb}"),
        Rlwinm { ra, rs, sh, mb, me } => format!("rlwinm r{ra}, r{rs}, {sh}, {mb}, {me}"),
        Cmpw { ra, rb } => format!("cmpw r{ra}, r{rb}"),
        Cmpwi { ra, simm } => format!("cmpwi r{ra}, {simm}"),
        Cmplw { ra, rb } => format!("cmplw r{ra}, r{rb}"),
        Cmplwi { ra, uimm } => format!("cmplwi r{ra}, {uimm}"),
        Lwz { rt, ra, d } => format!("lwz r{rt}, {d}(r{ra})"),
        Lbz { rt, ra, d } => format!("lbz r{rt}, {d}(r{ra})"),
        Stw { rs, ra, d } => format!("stw r{rs}, {d}(r{ra})"),
        Stb { rs, ra, d } => format!("stb r{rs}, {d}(r{ra})"),
        Lwzx { rt, ra, rb } => format!("lwzx r{rt}, r{ra}, r{rb}"),
        Stwx { rs, ra, rb } => format!("stwx r{rs}, r{ra}, r{rb}"),
        B { target, link } => format!("{} .{:+}", if link { "bl" } else { "b" }, target),
        Bc { cond, target, link } => {
            let m = match cond {
                Cond::Eq => "beq",
                Cond::Ne => "bne",
                Cond::Lt => "blt",
                Cond::Gt => "bgt",
                Cond::Ge => "bge",
                Cond::Le => "ble",
                Cond::Dnz => "bdnz",
            };
            format!("{m}{} .{:+}", if link { "l" } else { "" }, target)
        }
        Blr => "blr".to_string(),
        Bctr => "bctr".to_string(),
        Mtspr { spr, rs } => format!("mtspr {spr:?}, r{rs}").to_lowercase(),
        Mfspr { rt, spr } => format!("mfspr r{rt}, {spr:?}").to_lowercase(),
        Mtdcr { dcrn, rs } => format!("mtdcr {dcrn:#x}, r{rs}"),
        Mfdcr { rt, dcrn } => format!("mfdcr r{rt}, {dcrn:#x}"),
        Mtmsr { rs } => format!("mtmsr r{rs}"),
        Mfmsr { rt } => format!("mfmsr r{rt}"),
        Mtcrf { rs } => format!("mtcrf r{rs}"),
        Mfcr { rt } => format!("mfcr r{rt}"),
        Rfi => "rfi".to_string(),
        Sync => "sync".to_string(),
        Isync => "isync".to_string(),
        Trap => "halt".to_string(),
        Illegal(w) => format!(".word {w:#010x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readable_output() {
        assert_eq!(disassemble(0x3860_0001), "li r3, 1");
        assert_eq!(disassemble(0x4E80_0020), "blr");
        assert_eq!(disassemble(0x6000_0000), "nop");
        assert_eq!(disassemble(0x93E1_0008), "stw r31, 8(r1)");
        assert_eq!(disassemble(0xFFFF_FFFF), ".word 0xffffffff");
    }
}
