//! The instruction-set simulator: an architectural core plus a kernel
//! component that gives it cycle-accurate memory and DCR timing.
//!
//! The paper replaces the (far too slow) processor netlist with an IBM
//! PowerPC ISS so "the software could run as if it were running on a real
//! processor". This module is that VIP: instruction fetch comes straight
//! from the shared memory image (a perfect I-cache), while data accesses
//! travel over the PLB as real bus transactions and `mtdcr`/`mfdcr` issue
//! real DCR chain operations — so software/hardware timing interactions
//! (the heart of bug.dpr.5 and bug.dpr.6b) are simulated faithfully.

use crate::insn::{Cond, Instr, Spr};
use dcr::{DcrHandle, DcrOp, DcrResult};
use plb::{DmaDriver, DmaEvent, MasterPort, SharedMem};
use rtlsim::{CompKind, Component, Ctx, SignalId, Simulator, TraceCat};
use std::cell::RefCell;
use std::rc::Rc;

/// MSR bit: external interrupts enabled.
pub const MSR_EE: u32 = 0x8000;

/// What the architectural core needs the environment to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Instruction fully retired; continue (with `extra_cycles` of
    /// pipeline stall beyond the base cycle).
    Continue {
        /// Additional stall cycles (multiply/divide latency etc.).
        extra_cycles: u32,
    },
    /// Perform a load of `size` bytes and call
    /// [`CpuCore::complete_load`].
    Load {
        /// Byte address.
        addr: u32,
        /// 1 or 4 bytes.
        size: u8,
        /// Destination register.
        reg: u8,
    },
    /// Perform a store of `size` bytes.
    Store {
        /// Byte address.
        addr: u32,
        /// 1 or 4 bytes.
        size: u8,
        /// Value (byte stores use the low 8 bits).
        value: u32,
    },
    /// Read DCR `dcrn` and call [`CpuCore::complete_load`] with `reg`.
    DcrRead {
        /// DCR number.
        dcrn: u16,
        /// Destination register.
        reg: u8,
    },
    /// Write DCR `dcrn`.
    DcrWrite {
        /// DCR number.
        dcrn: u16,
        /// Value to write.
        value: u32,
    },
    /// `halt` (trap) executed.
    Halt,
    /// Illegal instruction or other architectural error.
    Error(String),
}

/// CR0 condition bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cr0 {
    /// Less than.
    pub lt: bool,
    /// Greater than.
    pub gt: bool,
    /// Equal.
    pub eq: bool,
}

/// The architectural state and instruction semantics (no timing).
#[derive(Debug, Clone)]
pub struct CpuCore {
    /// General purpose registers.
    pub gpr: [u32; 32],
    /// Program counter (address of the *next* instruction to execute).
    pub pc: u32,
    /// Machine state register (only `MSR_EE` is meaningful here).
    pub msr: u32,
    /// Condition register field 0.
    pub cr0: Cr0,
    /// Link register.
    pub lr: u32,
    /// Count register.
    pub ctr: u32,
    /// Saved PC on interrupt.
    pub srr0: u32,
    /// Saved MSR on interrupt.
    pub srr1: u32,
    /// Base address of the interrupt vector table (external interrupt
    /// enters at `vector_base + 0x500`).
    pub vector_base: u32,
}

impl CpuCore {
    /// A core that starts executing at `entry` with interrupts disabled.
    pub fn new(entry: u32, vector_base: u32) -> CpuCore {
        CpuCore {
            gpr: [0; 32],
            pc: entry,
            msr: 0,
            cr0: Cr0::default(),
            lr: 0,
            ctr: 0,
            srr0: 0,
            srr1: 0,
            vector_base,
        }
    }

    fn set_cr0_signed(&mut self, a: i32, b: i32) {
        self.cr0 = Cr0 {
            lt: a < b,
            gt: a > b,
            eq: a == b,
        };
    }

    fn set_cr0_unsigned(&mut self, a: u32, b: u32) {
        self.cr0 = Cr0 {
            lt: a < b,
            gt: a > b,
            eq: a == b,
        };
    }

    fn cond_taken(&mut self, c: Cond) -> bool {
        match c {
            Cond::Eq => self.cr0.eq,
            Cond::Ne => !self.cr0.eq,
            Cond::Lt => self.cr0.lt,
            Cond::Ge => !self.cr0.lt,
            Cond::Gt => self.cr0.gt,
            Cond::Le => !self.cr0.gt,
            Cond::Dnz => {
                self.ctr = self.ctr.wrapping_sub(1);
                self.ctr != 0
            }
        }
    }

    /// Take an external interrupt (call only when
    /// [`CpuCore::interrupts_enabled`]).
    pub fn external_interrupt(&mut self) {
        self.srr0 = self.pc;
        self.srr1 = self.msr;
        self.msr &= !MSR_EE;
        self.pc = self.vector_base + 0x500;
    }

    /// Are external interrupts enabled?
    pub fn interrupts_enabled(&self) -> bool {
        self.msr & MSR_EE != 0
    }

    /// Finish a previously returned `Load`/`DcrRead` action.
    pub fn complete_load(&mut self, reg: u8, value: u32) {
        self.gpr[reg as usize] = value;
    }

    /// Execute one decoded instruction located at the current PC.
    /// Advances the PC. Memory and DCR work is returned as an [`Action`]
    /// for the environment to perform with real timing.
    pub fn execute(&mut self, i: Instr) -> Action {
        use Instr::*;
        let pc = self.pc;
        self.pc = pc.wrapping_add(4);
        let g = |r: u8| -> u32 { self.gpr[r as usize] };
        let cont = Action::Continue { extra_cycles: 0 };
        match i {
            Addi { rt, ra, simm } => {
                let base = if ra == 0 { 0 } else { g(ra) };
                self.gpr[rt as usize] = base.wrapping_add(simm as i32 as u32);
                cont
            }
            Addis { rt, ra, simm } => {
                let base = if ra == 0 { 0 } else { g(ra) };
                self.gpr[rt as usize] = base.wrapping_add((simm as i32 as u32) << 16);
                cont
            }
            Ori { ra, rs, uimm } => {
                self.gpr[ra as usize] = g(rs) | uimm as u32;
                cont
            }
            Oris { ra, rs, uimm } => {
                self.gpr[ra as usize] = g(rs) | ((uimm as u32) << 16);
                cont
            }
            Xori { ra, rs, uimm } => {
                self.gpr[ra as usize] = g(rs) ^ uimm as u32;
                cont
            }
            AndiDot { ra, rs, uimm } => {
                let v = g(rs) & uimm as u32;
                self.gpr[ra as usize] = v;
                self.set_cr0_signed(v as i32, 0);
                cont
            }
            Add { rt, ra, rb } => {
                self.gpr[rt as usize] = g(ra).wrapping_add(g(rb));
                cont
            }
            Subf { rt, ra, rb } => {
                self.gpr[rt as usize] = g(rb).wrapping_sub(g(ra));
                cont
            }
            Mullw { rt, ra, rb } => {
                self.gpr[rt as usize] = g(ra).wrapping_mul(g(rb));
                Action::Continue { extra_cycles: 4 }
            }
            Divwu { rt, ra, rb } => {
                let d = g(rb);
                self.gpr[rt as usize] = g(ra).checked_div(d).unwrap_or(0);
                Action::Continue { extra_cycles: 35 }
            }
            Neg { rt, ra } => {
                self.gpr[rt as usize] = (g(ra) as i32).wrapping_neg() as u32;
                cont
            }
            And { ra, rs, rb } => {
                self.gpr[ra as usize] = g(rs) & g(rb);
                cont
            }
            Or { ra, rs, rb } => {
                self.gpr[ra as usize] = g(rs) | g(rb);
                cont
            }
            Xor { ra, rs, rb } => {
                self.gpr[ra as usize] = g(rs) ^ g(rb);
                cont
            }
            Slw { ra, rs, rb } => {
                let sh = g(rb) & 0x3F;
                self.gpr[ra as usize] = if sh >= 32 { 0 } else { g(rs) << sh };
                cont
            }
            Srw { ra, rs, rb } => {
                let sh = g(rb) & 0x3F;
                self.gpr[ra as usize] = if sh >= 32 { 0 } else { g(rs) >> sh };
                cont
            }
            Rlwinm { ra, rs, sh, mb, me } => {
                let rot = g(rs).rotate_left(sh as u32);
                // PowerPC big-endian bit numbering: bit 0 is the MSB.
                let x = u32::MAX >> mb;
                let y = u32::MAX << (31 - me);
                let mask = if mb <= me { x & y } else { x | y };
                self.gpr[ra as usize] = rot & mask;
                cont
            }
            Cmpw { ra, rb } => {
                self.set_cr0_signed(g(ra) as i32, g(rb) as i32);
                cont
            }
            Cmpwi { ra, simm } => {
                self.set_cr0_signed(g(ra) as i32, simm as i32);
                cont
            }
            Cmplw { ra, rb } => {
                self.set_cr0_unsigned(g(ra), g(rb));
                cont
            }
            Cmplwi { ra, uimm } => {
                self.set_cr0_unsigned(g(ra), uimm as u32);
                cont
            }
            Lwz { rt, ra, d } => {
                let base = if ra == 0 { 0 } else { g(ra) };
                Action::Load {
                    addr: base.wrapping_add(d as i32 as u32),
                    size: 4,
                    reg: rt,
                }
            }
            Lbz { rt, ra, d } => {
                let base = if ra == 0 { 0 } else { g(ra) };
                Action::Load {
                    addr: base.wrapping_add(d as i32 as u32),
                    size: 1,
                    reg: rt,
                }
            }
            Stw { rs, ra, d } => {
                let base = if ra == 0 { 0 } else { g(ra) };
                Action::Store {
                    addr: base.wrapping_add(d as i32 as u32),
                    size: 4,
                    value: g(rs),
                }
            }
            Stb { rs, ra, d } => {
                let base = if ra == 0 { 0 } else { g(ra) };
                Action::Store {
                    addr: base.wrapping_add(d as i32 as u32),
                    size: 1,
                    value: g(rs) & 0xFF,
                }
            }
            Lwzx { rt, ra, rb } => {
                let base = if ra == 0 { 0 } else { g(ra) };
                Action::Load {
                    addr: base.wrapping_add(g(rb)),
                    size: 4,
                    reg: rt,
                }
            }
            Stwx { rs, ra, rb } => {
                let base = if ra == 0 { 0 } else { g(ra) };
                Action::Store {
                    addr: base.wrapping_add(g(rb)),
                    size: 4,
                    value: g(rs),
                }
            }
            B { target, link } => {
                if link {
                    self.lr = pc.wrapping_add(4);
                }
                self.pc = pc.wrapping_add(target as u32);
                Action::Continue { extra_cycles: 1 }
            }
            Bc { cond, target, link } => {
                if link {
                    self.lr = pc.wrapping_add(4);
                }
                if self.cond_taken(cond) {
                    self.pc = pc.wrapping_add(target as i32 as u32);
                    Action::Continue { extra_cycles: 1 }
                } else {
                    cont
                }
            }
            Blr => {
                self.pc = self.lr & !3;
                Action::Continue { extra_cycles: 1 }
            }
            Bctr => {
                self.pc = self.ctr & !3;
                Action::Continue { extra_cycles: 1 }
            }
            Mtspr { spr, rs } => {
                match spr {
                    Spr::Lr => self.lr = g(rs),
                    Spr::Ctr => self.ctr = g(rs),
                    Spr::Srr0 => self.srr0 = g(rs),
                    Spr::Srr1 => self.srr1 = g(rs),
                }
                cont
            }
            Mfspr { rt, spr } => {
                self.gpr[rt as usize] = match spr {
                    Spr::Lr => self.lr,
                    Spr::Ctr => self.ctr,
                    Spr::Srr0 => self.srr0,
                    Spr::Srr1 => self.srr1,
                };
                cont
            }
            Mtdcr { dcrn, rs } => Action::DcrWrite { dcrn, value: g(rs) },
            Mfdcr { rt, dcrn } => Action::DcrRead { dcrn, reg: rt },
            Mtmsr { rs } => {
                self.msr = g(rs);
                cont
            }
            Mfmsr { rt } => {
                self.gpr[rt as usize] = self.msr;
                cont
            }
            Mfcr { rt } => {
                // CR0 occupies the top nibble: LT=31, GT=30, EQ=29.
                self.gpr[rt as usize] = ((self.cr0.lt as u32) << 31)
                    | ((self.cr0.gt as u32) << 30)
                    | ((self.cr0.eq as u32) << 29);
                cont
            }
            Mtcrf { rs } => {
                let v = g(rs);
                self.cr0 = Cr0 {
                    lt: v & (1 << 31) != 0,
                    gt: v & (1 << 30) != 0,
                    eq: v & (1 << 29) != 0,
                };
                cont
            }
            Rfi => {
                self.pc = self.srr0;
                self.msr = self.srr1;
                Action::Continue { extra_cycles: 1 }
            }
            Sync | Isync => Action::Continue { extra_cycles: 1 },
            Trap => Action::Halt,
            Illegal(w) => Action::Error(format!("illegal instruction {w:#010x} at {pc:#010x}")),
        }
    }
}

/// Execution statistics shared with the testbench.
#[derive(Debug, Default, Clone)]
pub struct IssStats {
    /// Instructions retired.
    pub instret: u64,
    /// Cycles elapsed while not halted.
    pub cycles: u64,
    /// Cycles spent stalled on loads/stores.
    pub mem_stall_cycles: u64,
    /// Cycles spent stalled on DCR accesses.
    pub dcr_stall_cycles: u64,
    /// External interrupts taken.
    pub interrupts: u64,
    /// Cycles spent between interrupt entry and `rfi` (ISR time — the
    /// "PowerPC Interrupt Handler" row of the paper's Table II).
    pub isr_cycles: u64,
    /// True once the core executed `halt`.
    pub halted: bool,
    /// Set when the core stopped on an error (message kept).
    pub error: Option<String>,
    /// PC of the most recently fetched instruction (debug aid).
    pub last_pc: u32,
}

#[derive(Debug)]
enum IssState {
    Run,
    Stall(u32),
    WaitLoadWord {
        reg: u8,
    },
    WaitLoadByte {
        reg: u8,
        byte_off: u32,
    },
    WaitStore,
    /// Byte store: read-modify-write (read phase).
    WaitRmwRead {
        addr: u32,
        byte_off: u32,
        value: u8,
    },
    /// Byte store: write phase in flight.
    WaitRmwWrite,
    WaitDcr {
        reg: Option<u8>,
    },
    Halted,
}

/// Configuration for the ISS component.
#[derive(Debug, Clone)]
pub struct IssConfig {
    /// First executed instruction.
    pub entry: u32,
    /// Interrupt vector base (external interrupt at `+0x500`).
    pub vector_base: u32,
    /// Keep the last N (pc, word) pairs for debugging.
    pub trace_depth: usize,
}

impl Default for IssConfig {
    fn default() -> Self {
        IssConfig {
            entry: 0x1000,
            vector_base: 0,
            trace_depth: 0,
        }
    }
}

/// The kernel component wrapping [`CpuCore`].
pub struct PpcIss {
    core: CpuCore,
    clk: SignalId,
    rst: SignalId,
    irq: SignalId,
    mem: SharedMem,
    dma: DmaDriver,
    dcr: DcrHandle,
    state: IssState,
    stats: Rc<RefCell<IssStats>>,
    in_isr: bool,
    trace: Vec<(u32, u32)>,
    trace_depth: usize,
    entry: u32,
}

impl PpcIss {
    /// Build and register the ISS. `port` must be connected to the PLB as
    /// a master; `dcr` to the DCR chain master; `irq` is the external
    /// interrupt line (level-sensitive while EE).
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        irq: SignalId,
        port: MasterPort,
        mem: SharedMem,
        dcr: DcrHandle,
        cfg: IssConfig,
    ) -> Rc<RefCell<IssStats>> {
        let stats = Rc::new(RefCell::new(IssStats::default()));
        let iss = PpcIss {
            core: CpuCore::new(cfg.entry, cfg.vector_base),
            clk,
            rst,
            irq,
            mem,
            dma: DmaDriver::new(port, plb::dma::Handshake::Full, 16),
            dcr,
            state: IssState::Run,
            stats: stats.clone(),
            in_isr: false,
            trace: Vec::new(),
            trace_depth: cfg.trace_depth,
            entry: cfg.entry,
        };
        let comp = sim.add_component(name, CompKind::Vip, Box::new(iss), &[clk, rst]);
        sim.declare_clocked(comp, clk);
        stats
    }

    fn begin_action(&mut self, ctx: &mut Ctx<'_>, action: Action) {
        match action {
            Action::Continue { extra_cycles } => {
                self.state = if extra_cycles > 0 {
                    IssState::Stall(extra_cycles)
                } else {
                    IssState::Run
                };
            }
            Action::Load { addr, size: 4, reg } => {
                self.dma.start_read(addr & !3, 1);
                self.state = IssState::WaitLoadWord { reg };
            }
            Action::Load { addr, reg, .. } => {
                self.dma.start_read(addr & !3, 1);
                self.state = IssState::WaitLoadByte {
                    reg,
                    byte_off: addr & 3,
                };
            }
            Action::Store {
                addr,
                size: 4,
                value,
            } => {
                self.dma.start_write(addr & !3, vec![value]);
                self.state = IssState::WaitStore;
            }
            Action::Store { addr, value, .. } => {
                // Byte store becomes read-modify-write on the 32-bit bus.
                self.dma.start_read(addr & !3, 1);
                self.state = IssState::WaitRmwRead {
                    addr: addr & !3,
                    byte_off: addr & 3,
                    value: value as u8,
                };
            }
            Action::DcrRead { dcrn, reg } => {
                self.dcr.request(DcrOp::Read(dcrn));
                self.state = IssState::WaitDcr { reg: Some(reg) };
            }
            Action::DcrWrite { dcrn, value } => {
                self.dcr.request(DcrOp::Write(dcrn, value));
                self.state = IssState::WaitDcr { reg: None };
            }
            Action::Halt => {
                self.stats.borrow_mut().halted = true;
                self.state = IssState::Halted;
            }
            Action::Error(msg) => {
                ctx.error(format!("CPU stopped: {msg}"));
                let mut s = self.stats.borrow_mut();
                s.error = Some(msg);
                s.halted = true;
                self.state = IssState::Halted;
            }
        }
    }
}

impl Component for PpcIss {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            self.core = CpuCore::new(self.entry, self.core.vector_base);
            self.state = IssState::Run;
            if self.in_isr {
                ctx.trace_end(TraceCat::Isr, "isr", 0, u64::MAX);
            }
            self.in_isr = false;
            self.dma.reset(ctx);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        {
            let mut s = self.stats.borrow_mut();
            if !matches!(self.state, IssState::Halted) {
                s.cycles += 1;
                if self.in_isr {
                    s.isr_cycles += 1;
                }
            }
        }
        match &mut self.state {
            // A halted core never restarts on its own; only reset revives
            // it (interrupts are not sampled while halted).
            IssState::Halted => ctx.park_until(&[self.rst], &[]),
            IssState::Stall(n) => {
                *n -= 1;
                if *n == 0 {
                    self.state = IssState::Run;
                }
            }
            IssState::Run => {
                // Interrupt check at instruction boundary.
                if self.core.interrupts_enabled() && ctx.is_high(self.irq) {
                    self.core.external_interrupt();
                    if !self.in_isr {
                        ctx.trace_begin(TraceCat::Isr, "isr", 0, 0);
                    }
                    self.in_isr = true;
                    self.stats.borrow_mut().interrupts += 1;
                }
                let pc = self.core.pc;
                if pc as usize + 4 > self.mem.len() {
                    let msg = format!("instruction fetch out of memory at {pc:#010x}");
                    ctx.error(format!("CPU stopped: {msg}"));
                    self.stats.borrow_mut().error = Some(msg);
                    self.state = IssState::Halted;
                    return;
                }
                let word = match self.mem.read_u32(pc) {
                    Some(w) => w,
                    None => {
                        let msg = format!("fetched X-poisoned instruction at {pc:#010x}");
                        ctx.error(format!("CPU stopped: {msg}"));
                        self.stats.borrow_mut().error = Some(msg);
                        self.state = IssState::Halted;
                        return;
                    }
                };
                if self.trace_depth > 0 {
                    if self.trace.len() == self.trace_depth {
                        self.trace.remove(0);
                    }
                    self.trace.push((pc, word));
                }
                let instr = Instr::decode(word);
                let was_rfi = matches!(instr, Instr::Rfi);
                let action = self.core.execute(instr);
                {
                    let mut s = self.stats.borrow_mut();
                    s.instret += 1;
                    s.last_pc = pc;
                }
                if was_rfi {
                    if self.in_isr {
                        ctx.trace_end(TraceCat::Isr, "isr", 0, 0);
                    }
                    self.in_isr = false;
                }
                self.begin_action(ctx, action);
            }
            IssState::WaitLoadWord { reg } => {
                let reg = *reg;
                self.stats.borrow_mut().mem_stall_cycles += 1;
                if let Some(ev) = self.dma.step(ctx) {
                    match ev {
                        DmaEvent::ReadDone => {
                            let v = self.dma.take_read_data()[0];
                            self.core.complete_load(reg, v);
                            self.state = IssState::Run;
                        }
                        _ => {
                            ctx.error("CPU load failed on the bus");
                            self.state = IssState::Halted;
                        }
                    }
                }
            }
            IssState::WaitLoadByte { reg, byte_off } => {
                let (reg, off) = (*reg, *byte_off);
                self.stats.borrow_mut().mem_stall_cycles += 1;
                if let Some(ev) = self.dma.step(ctx) {
                    match ev {
                        DmaEvent::ReadDone => {
                            let w = self.dma.take_read_data()[0];
                            self.core.complete_load(reg, (w >> (8 * off)) & 0xFF);
                            self.state = IssState::Run;
                        }
                        _ => {
                            ctx.error("CPU byte load failed on the bus");
                            self.state = IssState::Halted;
                        }
                    }
                }
            }
            IssState::WaitStore => {
                self.stats.borrow_mut().mem_stall_cycles += 1;
                if let Some(ev) = self.dma.step(ctx) {
                    match ev {
                        DmaEvent::WriteDone => self.state = IssState::Run,
                        _ => {
                            ctx.error("CPU store failed on the bus");
                            self.state = IssState::Halted;
                        }
                    }
                }
            }
            IssState::WaitRmwRead {
                addr,
                byte_off,
                value,
            } => {
                let (addr, off, val) = (*addr, *byte_off, *value);
                self.stats.borrow_mut().mem_stall_cycles += 1;
                if let Some(ev) = self.dma.step(ctx) {
                    match ev {
                        DmaEvent::ReadDone => {
                            let w = self.dma.take_read_data()[0];
                            let mask = 0xFFu32 << (8 * off);
                            let merged = (w & !mask) | ((val as u32) << (8 * off));
                            self.dma.start_write(addr, vec![merged]);
                            self.state = IssState::WaitRmwWrite;
                        }
                        _ => {
                            ctx.error("CPU byte store (read phase) failed on the bus");
                            self.state = IssState::Halted;
                        }
                    }
                }
            }
            IssState::WaitRmwWrite => {
                self.stats.borrow_mut().mem_stall_cycles += 1;
                if let Some(ev) = self.dma.step(ctx) {
                    match ev {
                        DmaEvent::WriteDone => self.state = IssState::Run,
                        _ => {
                            ctx.error("CPU byte store (write phase) failed on the bus");
                            self.state = IssState::Halted;
                        }
                    }
                }
            }
            IssState::WaitDcr { reg } => {
                let reg = *reg;
                self.stats.borrow_mut().dcr_stall_cycles += 1;
                if let Some((_, result)) = self.dcr.poll() {
                    match result {
                        DcrResult::Ok(v) => {
                            if let Some(r) = reg {
                                self.core.complete_load(r, v);
                            }
                            self.state = IssState::Run;
                        }
                        DcrResult::Timeout | DcrResult::CorruptX => {
                            // The DCR master already reported the error;
                            // software reads garbage and continues, as a
                            // real core would.
                            if let Some(r) = reg {
                                self.core.complete_load(r, 0xDEAD_DEAD);
                            }
                            self.state = IssState::Run;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    /// Run a program on the bare core with direct (zero-latency) memory,
    /// no bus — unit-level semantics checks.
    fn run_bare(src: &str, max_steps: usize) -> CpuCore {
        let p = assemble(src, 0x1000).unwrap();
        let mut mem = vec![0u8; 64 * 1024];
        mem[p.base as usize..p.base as usize + p.words.len() * 4].copy_from_slice(&p.to_bytes());
        let mut core = CpuCore::new(0x1000, 0);
        for _ in 0..max_steps {
            let pc = core.pc as usize;
            let w = u32::from_le_bytes(mem[pc..pc + 4].try_into().unwrap());
            match core.execute(Instr::decode(w)) {
                Action::Continue { .. } => {}
                Action::Load { addr, size, reg } => {
                    let a = (addr & !3) as usize;
                    let w = u32::from_le_bytes(mem[a..a + 4].try_into().unwrap());
                    let v = if size == 4 {
                        w
                    } else {
                        (w >> (8 * (addr & 3))) & 0xFF
                    };
                    core.complete_load(reg, v);
                }
                Action::Store { addr, size, value } => {
                    if size == 4 {
                        mem[addr as usize..addr as usize + 4].copy_from_slice(&value.to_le_bytes());
                    } else {
                        mem[addr as usize] = value as u8;
                    }
                }
                Action::Halt => return core,
                other => panic!("unexpected action {other:?}"),
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn arithmetic_loop_counts_to_ten() {
        let core = run_bare(
            "li r3, 0\nloop: addi r3, r3, 1\ncmpwi r3, 10\nbne loop\nhalt\n",
            200,
        );
        assert_eq!(core.gpr[3], 10);
    }

    #[test]
    fn function_call_and_return() {
        let core = run_bare(
            "li r3, 5\nbl double\nbl double\nhalt\ndouble: add r3, r3, r3\nblr\n",
            100,
        );
        assert_eq!(core.gpr[3], 20);
    }

    #[test]
    fn memory_round_trip_and_byte_ops() {
        let core = run_bare(
            "liw r4, 0x2000\nliw r3, 0x11223344\nstw r3, 0(r4)\nlwz r5, 0(r4)\nlbz r6, 1(r4)\nhalt\n",
            100,
        );
        assert_eq!(core.gpr[5], 0x11223344);
        assert_eq!(core.gpr[6], 0x33); // little-endian byte 1
    }

    #[test]
    fn bdnz_delay_loop() {
        let core = run_bare(
            "li r3, 0\nli r4, 100\nmtctr r4\nloop: addi r3, r3, 1\nbdnz loop\nhalt\n",
            500,
        );
        assert_eq!(core.gpr[3], 100);
        assert_eq!(core.ctr, 0);
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let core = run_bare(
            "liw r3, 0xFFFFFFFF\nli r4, 1\nli r5, 0\nli r6, 0\ncmpw r3, r4\nbge signed_ge\nb after1\nsigned_ge: li r5, 1\nafter1: cmplw r3, r4\nble unsigned_le\nli r6, 1\nunsigned_le: halt\n",
            100,
        );
        // -1 < 1 signed, so r5 stays 0; 0xFFFFFFFF > 1 unsigned, so r6 = 1.
        assert_eq!(core.gpr[5], 0);
        assert_eq!(core.gpr[6], 1);
    }

    #[test]
    fn rlwinm_masks() {
        let core = run_bare(
            "liw r3, 0xDEADBEEF\nslwi r4, r3, 8\nsrwi r5, r3, 16\nrlwinm r6, r3, 0, 24, 31\nhalt\n",
            50,
        );
        assert_eq!(core.gpr[4], 0xADBEEF00);
        assert_eq!(core.gpr[5], 0x0000DEAD);
        assert_eq!(core.gpr[6], 0x000000EF);
    }

    #[test]
    fn shift_register_ops() {
        let core = run_bare(
            "li r3, 1\nli r4, 35\nslw r5, r3, r4\nli r4, 4\nslw r6, r3, r4\nliw r7, 0x80000000\nsrw r8, r7, r4\nhalt\n",
            60,
        );
        assert_eq!(core.gpr[5], 0, "shift >= 32 yields 0");
        assert_eq!(core.gpr[6], 16);
        assert_eq!(core.gpr[8], 0x0800_0000);
    }

    #[test]
    fn mul_div_neg() {
        let core = run_bare(
            "li r3, 7\nli r4, 6\nmullw r5, r3, r4\nli r6, 100\nli r7, 7\ndivwu r8, r6, r7\nneg r9, r3\nhalt\n",
            50,
        );
        assert_eq!(core.gpr[5], 42);
        assert_eq!(core.gpr[8], 14);
        assert_eq!(core.gpr[9], (-7i32) as u32);
    }

    #[test]
    fn interrupt_save_restore() {
        let mut core = CpuCore::new(0x1000, 0);
        core.msr = MSR_EE;
        core.pc = 0x1234;
        core.external_interrupt();
        assert_eq!(core.pc, 0x500);
        assert_eq!(core.srr0, 0x1234);
        assert_eq!(core.srr1, MSR_EE);
        assert!(!core.interrupts_enabled());
        // rfi restores.
        let action = core.execute(Instr::Rfi);
        assert!(matches!(action, Action::Continue { .. }));
        assert_eq!(core.pc, 0x1234);
        assert!(core.interrupts_enabled());
    }

    #[test]
    fn dcr_actions_surface() {
        let mut core = CpuCore::new(0, 0);
        core.gpr[3] = 0xCAFE;
        assert_eq!(
            core.execute(Instr::Mtdcr { dcrn: 0x100, rs: 3 }),
            Action::DcrWrite {
                dcrn: 0x100,
                value: 0xCAFE
            }
        );
        assert_eq!(
            core.execute(Instr::Mfdcr { rt: 4, dcrn: 0x101 }),
            Action::DcrRead {
                dcrn: 0x101,
                reg: 4
            }
        );
        core.complete_load(4, 77);
        assert_eq!(core.gpr[4], 77);
    }

    #[test]
    fn illegal_instruction_errors() {
        let mut core = CpuCore::new(0, 0);
        match core.execute(Instr::Illegal(0xFFFF_FFFF)) {
            Action::Error(msg) => assert!(msg.contains("illegal")),
            other => panic!("{other:?}"),
        }
    }
}
