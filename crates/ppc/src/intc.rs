//! A small DCR-programmed interrupt controller.
//!
//! The Optical Flow Demonstrator's processing flow is driven by ISRs:
//! the start, end and reconfiguration of the video engines are all
//! signalled through interrupt lines gathered here (Figure 2 of the
//! paper). Registers (DCR):
//!
//! | offset | name   | behaviour                                     |
//! |--------|--------|-----------------------------------------------|
//! | 0      | STATUS | pending lines (read)                          |
//! | 1      | ENABLE | per-line enable mask (read/write)             |
//! | 2      | ACK    | write-1-to-clear pending bits                 |
//!
//! A rising edge on a line latches its pending bit; `irq` is high while
//! `STATUS & ENABLE != 0`.
//!
//! The `clear_race_bug` knob reproduces the static-region bug class
//! "interrupt lost while being acknowledged" (bug.hw.4): the buggy
//! controller clears *all* pending bits on any ACK write, losing an
//! interrupt that arrived in the same cycle.

use dcr::RegFile;
use rtlsim::{CompKind, Component, Ctx, DoorbellId, SignalId, Simulator};

/// Register offsets within the controller's DCR block.
pub mod reg {
    /// Pending lines (read-only).
    pub const STATUS: u16 = 0;
    /// Per-line enable mask.
    pub const ENABLE: u16 = 1;
    /// Write-1-to-clear acknowledge.
    pub const ACK: u16 = 2;
}

/// The interrupt controller component.
pub struct IntController {
    clk: SignalId,
    rst: SignalId,
    lines: Vec<SignalId>,
    irq: SignalId,
    regs: RegFile,
    prev_levels: u32,
    pending: u32,
    /// Reproduces the ACK race bug when true: ACK clears every pending
    /// bit, losing a same-cycle arrival.
    clear_race_bug: bool,
    /// Reproduces the "pulse instead of level" bug when true: `irq` is a
    /// single-cycle pulse on new pending bits rather than a level held
    /// until acknowledged — a processor busy in a multi-cycle bus stall
    /// misses it entirely (the case study's hung-pipeline static bug
    /// class).
    pulse_irq_bug: bool,
    prev_pending: u32,
    /// Interrupt lines plus reset: the park wake set.
    wake: Vec<SignalId>,
    /// Doorbell rung by DCR writes to the controller's registers.
    bell: Option<DoorbellId>,
}

impl IntController {
    /// Build and register the controller. `regs` must have at least 3
    /// registers; `lines` are the interrupt inputs (bit i = line i);
    /// `irq` is the output wired to the processor.
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        lines: Vec<SignalId>,
        irq: SignalId,
        regs: RegFile,
        clear_race_bug: bool,
    ) {
        Self::instantiate_with(sim, name, clk, rst, lines, irq, regs, clear_race_bug, false)
    }

    /// As [`IntController::instantiate`], with the pulse-irq defect knob.
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate_with(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        lines: Vec<SignalId>,
        irq: SignalId,
        regs: RegFile,
        clear_race_bug: bool,
        pulse_irq_bug: bool,
    ) {
        assert!(
            regs.len() >= 3,
            "interrupt controller needs 3 DCR registers"
        );
        assert!(lines.len() <= 32, "at most 32 interrupt lines");
        let mut sens = vec![clk, rst];
        sens.extend_from_slice(&lines);
        let mut wake = lines.clone();
        wake.push(rst);
        let bell = sim.add_doorbell(regs.dirty_flag());
        let intc = IntController {
            clk,
            rst,
            lines,
            irq,
            regs,
            prev_levels: 0,
            pending: 0,
            clear_race_bug,
            pulse_irq_bug,
            prev_pending: 0,
            wake,
            bell: Some(bell),
        };
        let comp = sim.add_component(name, CompKind::UserStatic, Box::new(intc), &sens);
        sim.declare_clocked(comp, clk);
    }
}

impl Component for IntController {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            self.pending = 0;
            self.prev_levels = 0;
            self.regs.set(reg::STATUS, 0);
            ctx.set_bit(self.irq, false);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        // Sample lines and latch rising edges.
        let mut levels = 0u32;
        for (i, &l) in self.lines.iter().enumerate() {
            if ctx.is_high(l) {
                levels |= 1 << i;
            }
        }
        let rising = levels & !self.prev_levels;
        self.prev_levels = levels;

        // Apply software writes.
        let mut ack_mask = 0u32;
        for (off, v) in self.regs.take_writes() {
            if off == reg::ACK {
                ack_mask |= v;
            }
            // ENABLE writes take effect via the register file itself.
        }
        if ack_mask != 0 {
            if self.clear_race_bug {
                // BUG: clears everything, including bits latched this
                // very cycle — an interrupt can vanish unobserved.
                self.pending = 0;
            } else {
                self.pending &= !ack_mask;
            }
        }
        // New arrivals win over clears in the correct design; in the
        // buggy design they were already wiped above if ACK hit.
        if !(self.clear_race_bug && ack_mask != 0) {
            self.pending |= rising;
        }

        self.regs.set(reg::STATUS, self.pending);
        let enable = self.regs.get(reg::ENABLE);
        let mut pulse_open = false;
        if self.pulse_irq_bug {
            // BUG: only newly pending, enabled bits pulse the line for a
            // single cycle.
            let newly = self.pending & !self.prev_pending;
            pulse_open = newly & enable != 0;
            ctx.set_bit(self.irq, pulse_open);
        } else {
            ctx.set_bit(self.irq, self.pending & enable != 0);
        }
        self.prev_pending = self.pending;
        // Once the line sampling reached its fixed point this state is a
        // pure function of lines/ENABLE/pending; sleep until a line or
        // reset moves, or software touches a register. A single-cycle
        // irq pulse keeps the controller awake so the next edge clears it.
        if !pulse_open {
            if let Some(bell) = self.bell {
                ctx.park_until(&self.wake, &[bell]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlsim::{Clock, ResetGen, Simulator};

    const PERIOD: u64 = 10_000;

    struct Tb {
        sim: Simulator,
        lines: Vec<SignalId>,
        irq: SignalId,
        regs: RegFile,
    }

    fn tb(buggy: bool) -> Tb {
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        let rst = sim.signal("rst", 1);
        sim.add_component(
            "clkgen",
            CompKind::Vip,
            Box::new(Clock::new(clk, PERIOD)),
            &[],
        );
        sim.add_component(
            "rstgen",
            CompKind::Vip,
            Box::new(ResetGen::new(rst, 2 * PERIOD)),
            &[],
        );
        let lines: Vec<SignalId> = (0..4)
            .map(|i| sim.signal_init(format!("l{i}"), 1, 0))
            .collect();
        let irq = sim.signal("irq", 1);
        let regs = RegFile::new(0x300, 3);
        IntController::instantiate(
            &mut sim,
            "intc",
            clk,
            rst,
            lines.clone(),
            irq,
            regs.clone(),
            buggy,
        );
        Tb {
            sim,
            lines,
            irq,
            regs,
        }
    }

    #[test]
    fn rising_edge_latches_and_enable_gates_irq() {
        let mut t = tb(false);
        t.sim.run_for(5 * PERIOD).unwrap();
        t.sim.poke_u64(t.lines[1], 1);
        t.sim.run_for(3 * PERIOD).unwrap();
        assert_eq!(t.regs.get(reg::STATUS), 0b10, "pending latched");
        assert_eq!(t.sim.peek_u64(t.irq), Some(0), "masked while ENABLE=0");
        t.regs.bus_write(0x300 + reg::ENABLE, 0b10);
        t.sim.run_for(2 * PERIOD).unwrap();
        assert_eq!(t.sim.peek_u64(t.irq), Some(1));
        // Level stays high but pending persists after line drops.
        t.sim.poke_u64(t.lines[1], 0);
        t.sim.run_for(2 * PERIOD).unwrap();
        assert_eq!(t.regs.get(reg::STATUS), 0b10);
    }

    #[test]
    fn ack_clears_only_selected_bits() {
        let mut t = tb(false);
        t.sim.run_for(5 * PERIOD).unwrap();
        t.sim.poke_u64(t.lines[0], 1);
        t.sim.poke_u64(t.lines[2], 1);
        t.sim.run_for(3 * PERIOD).unwrap();
        assert_eq!(t.regs.get(reg::STATUS), 0b101);
        t.regs.bus_write(0x300 + reg::ACK, 0b001);
        t.sim.run_for(2 * PERIOD).unwrap();
        assert_eq!(t.regs.get(reg::STATUS), 0b100);
    }

    #[test]
    fn arrival_during_ack_survives_in_correct_design() {
        let mut t = tb(false);
        t.sim.run_for(5 * PERIOD).unwrap();
        t.sim.poke_u64(t.lines[0], 1);
        t.sim.run_for(3 * PERIOD).unwrap();
        // Line 3 rises in the same cycle the ACK for line 0 lands.
        t.regs.bus_write(0x300 + reg::ACK, 0b1);
        t.sim.poke_u64(t.lines[3], 1);
        t.sim.run_for(2 * PERIOD).unwrap();
        assert_eq!(t.regs.get(reg::STATUS), 0b1000, "new arrival must survive");
    }

    #[test]
    fn buggy_controller_loses_simultaneous_arrival() {
        let mut t = tb(true);
        t.sim.run_for(5 * PERIOD).unwrap();
        t.sim.poke_u64(t.lines[0], 1);
        t.sim.run_for(3 * PERIOD).unwrap();
        t.regs.bus_write(0x300 + reg::ACK, 0b1);
        t.sim.poke_u64(t.lines[3], 1);
        t.sim.run_for(2 * PERIOD).unwrap();
        assert_eq!(t.regs.get(reg::STATUS), 0, "bug.hw.4: interrupt lost");
    }
}
