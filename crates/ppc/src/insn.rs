//! The PowerPC-405 instruction subset: a typed instruction enum with
//! encoders and decoders for the real 32-bit PowerPC formats.
//!
//! Only the instructions the AutoVision control software needs are
//! implemented; everything else decodes to [`Instr::Illegal`], which the
//! CPU reports as an error and halts on. Encodings follow the PowerPC
//! User ISA (D-, B-, I-, M-, X-, XL- and XFX-forms), including the
//! split-field convention for SPR and DCR numbers.

/// Condition-register bit indices within CR0 used by branch conditions.
pub const CR_LT: u8 = 0;
/// CR0 "greater than" bit.
pub const CR_GT: u8 = 1;
/// CR0 "equal" bit.
pub const CR_EQ: u8 = 2;

/// Special-purpose register numbers (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spr {
    /// Link register.
    Lr,
    /// Count register.
    Ctr,
    /// Save/restore register 0 (interrupted PC).
    Srr0,
    /// Save/restore register 1 (interrupted MSR).
    Srr1,
}

impl Spr {
    /// Architectural SPR number.
    pub fn number(self) -> u16 {
        match self {
            Spr::Lr => 8,
            Spr::Ctr => 9,
            Spr::Srr0 => 26,
            Spr::Srr1 => 27,
        }
    }

    /// Decode from an architectural SPR number.
    pub fn from_number(n: u16) -> Option<Spr> {
        match n {
            8 => Some(Spr::Lr),
            9 => Some(Spr::Ctr),
            26 => Some(Spr::Srr0),
            27 => Some(Spr::Srr1),
            _ => None,
        }
    }
}

/// Branch conditions (a practical subset of the BO/BI space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Branch if CR0\[EQ\] set.
    Eq,
    /// Branch if CR0\[EQ\] clear.
    Ne,
    /// Branch if CR0\[LT\] set.
    Lt,
    /// Branch if CR0\[GT\] set.
    Gt,
    /// Branch if CR0\[LT\] clear (>=).
    Ge,
    /// Branch if CR0\[GT\] clear (<=).
    Le,
    /// Decrement CTR, branch if CTR != 0 (`bdnz`).
    Dnz,
}

impl Cond {
    /// (BO, BI) encoding of the condition.
    pub fn to_bo_bi(self) -> (u8, u8) {
        match self {
            Cond::Eq => (12, CR_EQ),
            Cond::Ne => (4, CR_EQ),
            Cond::Lt => (12, CR_LT),
            Cond::Ge => (4, CR_LT),
            Cond::Gt => (12, CR_GT),
            Cond::Le => (4, CR_GT),
            Cond::Dnz => (16, 0),
        }
    }

    /// Decode from (BO, BI); `None` for unsupported combinations.
    pub fn from_bo_bi(bo: u8, bi: u8) -> Option<Cond> {
        match (bo & 0x1E, bi) {
            (12, b) if b == CR_EQ => Some(Cond::Eq),
            (4, b) if b == CR_EQ => Some(Cond::Ne),
            (12, b) if b == CR_LT => Some(Cond::Lt),
            (4, b) if b == CR_LT => Some(Cond::Ge),
            (12, b) if b == CR_GT => Some(Cond::Gt),
            (4, b) if b == CR_GT => Some(Cond::Le),
            (16, 0) => Some(Cond::Dnz),
            _ => None,
        }
    }
}

/// A decoded instruction. Register operands are 0..=31.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operand meanings follow the PowerPC UISA
pub enum Instr {
    // D-form arithmetic/logical with immediate.
    Addi {
        rt: u8,
        ra: u8,
        simm: i16,
    },
    Addis {
        rt: u8,
        ra: u8,
        simm: i16,
    },
    Ori {
        ra: u8,
        rs: u8,
        uimm: u16,
    },
    Oris {
        ra: u8,
        rs: u8,
        uimm: u16,
    },
    Xori {
        ra: u8,
        rs: u8,
        uimm: u16,
    },
    AndiDot {
        ra: u8,
        rs: u8,
        uimm: u16,
    },
    // X-form register-register integer ops.
    Add {
        rt: u8,
        ra: u8,
        rb: u8,
    },
    Subf {
        rt: u8,
        ra: u8,
        rb: u8,
    },
    Mullw {
        rt: u8,
        ra: u8,
        rb: u8,
    },
    Divwu {
        rt: u8,
        ra: u8,
        rb: u8,
    },
    Neg {
        rt: u8,
        ra: u8,
    },
    And {
        ra: u8,
        rs: u8,
        rb: u8,
    },
    Or {
        ra: u8,
        rs: u8,
        rb: u8,
    },
    Xor {
        ra: u8,
        rs: u8,
        rb: u8,
    },
    Slw {
        ra: u8,
        rs: u8,
        rb: u8,
    },
    Srw {
        ra: u8,
        rs: u8,
        rb: u8,
    },
    // M-form rotate-and-mask.
    Rlwinm {
        ra: u8,
        rs: u8,
        sh: u8,
        mb: u8,
        me: u8,
    },
    // Compares (CR0 only in this subset).
    Cmpw {
        ra: u8,
        rb: u8,
    },
    Cmpwi {
        ra: u8,
        simm: i16,
    },
    Cmplw {
        ra: u8,
        rb: u8,
    },
    Cmplwi {
        ra: u8,
        uimm: u16,
    },
    // Loads/stores (D-form and X-form indexed).
    Lwz {
        rt: u8,
        ra: u8,
        d: i16,
    },
    Lbz {
        rt: u8,
        ra: u8,
        d: i16,
    },
    Stw {
        rs: u8,
        ra: u8,
        d: i16,
    },
    Stb {
        rs: u8,
        ra: u8,
        d: i16,
    },
    Lwzx {
        rt: u8,
        ra: u8,
        rb: u8,
    },
    Stwx {
        rs: u8,
        ra: u8,
        rb: u8,
    },
    // Branches. Displacements are byte offsets relative to the branch.
    B {
        target: i32,
        link: bool,
    },
    Bc {
        cond: Cond,
        target: i16,
        link: bool,
    },
    Blr,
    Bctr,
    // System.
    Mtspr {
        spr: Spr,
        rs: u8,
    },
    Mfspr {
        rt: u8,
        spr: Spr,
    },
    Mtdcr {
        dcrn: u16,
        rs: u8,
    },
    Mfdcr {
        rt: u8,
        dcrn: u16,
    },
    Mtmsr {
        rs: u8,
    },
    Mfmsr {
        rt: u8,
    },
    /// `mtcrf 0xFF, rs` — restore the condition register.
    Mtcrf {
        rs: u8,
    },
    /// `mfcr rt` — read the condition register.
    Mfcr {
        rt: u8,
    },
    Rfi,
    Sync,
    Isync,
    /// `tw 31,0,0` — used as a HALT marker for the ISS.
    Trap,
    /// Anything the subset does not implement.
    Illegal(u32),
}

/// Swap the two 5-bit halves of a 10-bit split field (SPR/DCR encoding).
#[inline]
fn split10(n: u16) -> u32 {
    (((n as u32) & 0x1F) << 5) | (((n as u32) >> 5) & 0x1F)
}

#[inline]
fn unsplit10(f: u32) -> u16 {
    ((((f) & 0x1F) << 5) | ((f >> 5) & 0x1F)) as u16
}

fn d_form(op: u32, rt: u8, ra: u8, imm: u16) -> u32 {
    (op << 26) | ((rt as u32) << 21) | ((ra as u32) << 16) | imm as u32
}

fn x_form(rt: u8, ra: u8, rb: u8, xo: u32) -> u32 {
    (31 << 26) | ((rt as u32) << 21) | ((ra as u32) << 16) | ((rb as u32) << 11) | (xo << 1)
}

impl Instr {
    /// Encode to the 32-bit machine word.
    pub fn encode(&self) -> u32 {
        use Instr::*;
        match *self {
            Addi { rt, ra, simm } => d_form(14, rt, ra, simm as u16),
            Addis { rt, ra, simm } => d_form(15, rt, ra, simm as u16),
            Ori { ra, rs, uimm } => d_form(24, rs, ra, uimm),
            Oris { ra, rs, uimm } => d_form(25, rs, ra, uimm),
            Xori { ra, rs, uimm } => d_form(26, rs, ra, uimm),
            AndiDot { ra, rs, uimm } => d_form(28, rs, ra, uimm),
            Add { rt, ra, rb } => x_form(rt, ra, rb, 266),
            Subf { rt, ra, rb } => x_form(rt, ra, rb, 40),
            Mullw { rt, ra, rb } => x_form(rt, ra, rb, 235),
            Divwu { rt, ra, rb } => x_form(rt, ra, rb, 459),
            Neg { rt, ra } => x_form(rt, ra, 0, 104),
            And { ra, rs, rb } => x_form(rs, ra, rb, 28),
            Or { ra, rs, rb } => x_form(rs, ra, rb, 444),
            Xor { ra, rs, rb } => x_form(rs, ra, rb, 316),
            Slw { ra, rs, rb } => x_form(rs, ra, rb, 24),
            Srw { ra, rs, rb } => x_form(rs, ra, rb, 536),
            Rlwinm { ra, rs, sh, mb, me } => {
                (21 << 26)
                    | ((rs as u32) << 21)
                    | ((ra as u32) << 16)
                    | ((sh as u32) << 11)
                    | ((mb as u32) << 6)
                    | ((me as u32) << 1)
            }
            Cmpw { ra, rb } => x_form(0, ra, rb, 0),
            Cmpwi { ra, simm } => d_form(11, 0, ra, simm as u16),
            Cmplw { ra, rb } => x_form(0, ra, rb, 32),
            Cmplwi { ra, uimm } => d_form(10, 0, ra, uimm),
            Lwz { rt, ra, d } => d_form(32, rt, ra, d as u16),
            Lbz { rt, ra, d } => d_form(34, rt, ra, d as u16),
            Stw { rs, ra, d } => d_form(36, rs, ra, d as u16),
            Stb { rs, ra, d } => d_form(38, rs, ra, d as u16),
            Lwzx { rt, ra, rb } => x_form(rt, ra, rb, 23),
            Stwx { rs, ra, rb } => x_form(rs, ra, rb, 151),
            B { target, link } => (18 << 26) | ((target as u32) & 0x03FF_FFFC) | link as u32,
            Bc { cond, target, link } => {
                let (bo, bi) = cond.to_bo_bi();
                (16 << 26)
                    | ((bo as u32) << 21)
                    | ((bi as u32) << 16)
                    | ((target as u32) & 0xFFFC)
                    | link as u32
            }
            Blr => (19 << 26) | (20 << 21) | (16 << 1),
            Bctr => (19 << 26) | (20 << 21) | (528 << 1),
            Mtspr { spr, rs } => {
                (31 << 26) | ((rs as u32) << 21) | (split10(spr.number()) << 11) | (467 << 1)
            }
            Mfspr { rt, spr } => {
                (31 << 26) | ((rt as u32) << 21) | (split10(spr.number()) << 11) | (339 << 1)
            }
            Mtdcr { dcrn, rs } => {
                (31 << 26) | ((rs as u32) << 21) | (split10(dcrn) << 11) | (451 << 1)
            }
            Mfdcr { rt, dcrn } => {
                (31 << 26) | ((rt as u32) << 21) | (split10(dcrn) << 11) | (323 << 1)
            }
            Mtmsr { rs } => x_form(rs, 0, 0, 146),
            Mfmsr { rt } => x_form(rt, 0, 0, 83),
            Mtcrf { rs } => (31 << 26) | ((rs as u32) << 21) | (0xFF << 12) | (144 << 1),
            Mfcr { rt } => (31 << 26) | ((rt as u32) << 21) | (19 << 1),
            Rfi => (19 << 26) | (50 << 1),
            Sync => x_form(0, 0, 0, 598),
            Isync => (19 << 26) | (150 << 1),
            Trap => (31 << 26) | (31 << 21) | (4 << 1),
            Illegal(w) => w,
        }
    }

    /// Decode a 32-bit machine word.
    pub fn decode(w: u32) -> Instr {
        use Instr::*;
        let op = w >> 26;
        let rt = ((w >> 21) & 0x1F) as u8;
        let ra = ((w >> 16) & 0x1F) as u8;
        let rb = ((w >> 11) & 0x1F) as u8;
        let imm = (w & 0xFFFF) as u16;
        match op {
            10 => Cmplwi { ra, uimm: imm },
            11 => Cmpwi {
                ra,
                simm: imm as i16,
            },
            14 => Addi {
                rt,
                ra,
                simm: imm as i16,
            },
            15 => Addis {
                rt,
                ra,
                simm: imm as i16,
            },
            16 => {
                let bo = rt;
                let bi = ra;
                let bd = (imm & 0xFFFC) as i16;
                match Cond::from_bo_bi(bo, bi) {
                    Some(cond) => Bc {
                        cond,
                        target: bd,
                        link: w & 1 != 0,
                    },
                    None => Illegal(w),
                }
            }
            18 => {
                // Sign-extend the 24-bit displacement (<<2).
                let li = ((w & 0x03FF_FFFC) as i32) << 6 >> 6;
                B {
                    target: li,
                    link: w & 1 != 0,
                }
            }
            19 => match (w >> 1) & 0x3FF {
                16 if rt == 20 => Blr,
                528 if rt == 20 => Bctr,
                50 => Rfi,
                150 => Isync,
                _ => Illegal(w),
            },
            21 => Rlwinm {
                ra,
                rs: rt,
                sh: rb,
                mb: ((w >> 6) & 0x1F) as u8,
                me: ((w >> 1) & 0x1F) as u8,
            },
            24 => Ori {
                ra,
                rs: rt,
                uimm: imm,
            },
            25 => Oris {
                ra,
                rs: rt,
                uimm: imm,
            },
            26 => Xori {
                ra,
                rs: rt,
                uimm: imm,
            },
            28 => AndiDot {
                ra,
                rs: rt,
                uimm: imm,
            },
            32 => Lwz {
                rt,
                ra,
                d: imm as i16,
            },
            34 => Lbz {
                rt,
                ra,
                d: imm as i16,
            },
            36 => Stw {
                rs: rt,
                ra,
                d: imm as i16,
            },
            38 => Stb {
                rs: rt,
                ra,
                d: imm as i16,
            },
            31 => {
                let xo = (w >> 1) & 0x3FF;
                let spl = (w >> 11) & 0x3FF;
                match xo {
                    0 if rt == 0 => Cmpw { ra, rb },
                    32 if rt == 0 => Cmplw { ra, rb },
                    4 if rt == 31 && ra == 0 && rb == 0 => Trap,
                    23 => Lwzx { rt, ra, rb },
                    24 => Slw { ra, rs: rt, rb },
                    28 => And { ra, rs: rt, rb },
                    40 => Subf { rt, ra, rb },
                    19 => Mfcr { rt },
                    83 => Mfmsr { rt },
                    144 => Mtcrf { rs: rt },
                    104 => Neg { rt, ra },
                    146 => Mtmsr { rs: rt },
                    151 => Stwx { rs: rt, ra, rb },
                    235 => Mullw { rt, ra, rb },
                    266 => Add { rt, ra, rb },
                    316 => Xor { ra, rs: rt, rb },
                    323 => Mfdcr {
                        rt,
                        dcrn: unsplit10(spl),
                    },
                    339 => match Spr::from_number(unsplit10(spl)) {
                        Some(spr) => Mfspr { rt, spr },
                        None => Illegal(w),
                    },
                    444 => Or { ra, rs: rt, rb },
                    451 => Mtdcr {
                        dcrn: unsplit10(spl),
                        rs: rt,
                    },
                    459 => Divwu { rt, ra, rb },
                    467 => match Spr::from_number(unsplit10(spl)) {
                        Some(spr) => Mtspr { spr, rs: rt },
                        None => Illegal(w),
                    },
                    536 => Srw { ra, rs: rt, rb },
                    598 => Sync,
                    _ => Illegal(w),
                }
            }
            _ => Illegal(w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let w = i.encode();
        assert_eq!(Instr::decode(w), i, "word {w:#010x}");
    }

    #[test]
    fn encode_decode_round_trip_all_forms() {
        roundtrip(Instr::Addi {
            rt: 3,
            ra: 0,
            simm: -42,
        });
        roundtrip(Instr::Addis {
            rt: 31,
            ra: 1,
            simm: 0x7FFF,
        });
        roundtrip(Instr::Ori {
            ra: 5,
            rs: 6,
            uimm: 0xBEEF,
        });
        roundtrip(Instr::Oris {
            ra: 5,
            rs: 6,
            uimm: 0xDEAD,
        });
        roundtrip(Instr::Xori {
            ra: 1,
            rs: 2,
            uimm: 3,
        });
        roundtrip(Instr::AndiDot {
            ra: 9,
            rs: 10,
            uimm: 0xFF,
        });
        roundtrip(Instr::Add {
            rt: 1,
            ra: 2,
            rb: 3,
        });
        roundtrip(Instr::Subf {
            rt: 4,
            ra: 5,
            rb: 6,
        });
        roundtrip(Instr::Mullw {
            rt: 7,
            ra: 8,
            rb: 9,
        });
        roundtrip(Instr::Divwu {
            rt: 10,
            ra: 11,
            rb: 12,
        });
        roundtrip(Instr::Neg { rt: 13, ra: 14 });
        roundtrip(Instr::And {
            ra: 1,
            rs: 2,
            rb: 3,
        });
        roundtrip(Instr::Or {
            ra: 4,
            rs: 5,
            rb: 6,
        });
        roundtrip(Instr::Xor {
            ra: 7,
            rs: 8,
            rb: 9,
        });
        roundtrip(Instr::Slw {
            ra: 10,
            rs: 11,
            rb: 12,
        });
        roundtrip(Instr::Srw {
            ra: 13,
            rs: 14,
            rb: 15,
        });
        roundtrip(Instr::Rlwinm {
            ra: 1,
            rs: 2,
            sh: 3,
            mb: 4,
            me: 31,
        });
        roundtrip(Instr::Cmpw { ra: 3, rb: 4 });
        roundtrip(Instr::Cmpwi { ra: 3, simm: -1 });
        roundtrip(Instr::Cmplw { ra: 3, rb: 4 });
        roundtrip(Instr::Cmplwi {
            ra: 3,
            uimm: 0xFFFF,
        });
        roundtrip(Instr::Lwz {
            rt: 3,
            ra: 1,
            d: -8,
        });
        roundtrip(Instr::Lbz {
            rt: 3,
            ra: 1,
            d: 100,
        });
        roundtrip(Instr::Stw { rs: 3, ra: 1, d: 4 });
        roundtrip(Instr::Stb {
            rs: 3,
            ra: 1,
            d: -4,
        });
        roundtrip(Instr::Lwzx {
            rt: 1,
            ra: 2,
            rb: 3,
        });
        roundtrip(Instr::Stwx {
            rs: 4,
            ra: 5,
            rb: 6,
        });
        roundtrip(Instr::B {
            target: -1024,
            link: false,
        });
        roundtrip(Instr::B {
            target: 0x20_0000,
            link: true,
        });
        for cond in [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Gt,
            Cond::Ge,
            Cond::Le,
            Cond::Dnz,
        ] {
            roundtrip(Instr::Bc {
                cond,
                target: -64,
                link: false,
            });
            roundtrip(Instr::Bc {
                cond,
                target: 128,
                link: true,
            });
        }
        roundtrip(Instr::Blr);
        roundtrip(Instr::Bctr);
        for spr in [Spr::Lr, Spr::Ctr, Spr::Srr0, Spr::Srr1] {
            roundtrip(Instr::Mtspr { spr, rs: 3 });
            roundtrip(Instr::Mfspr { rt: 4, spr });
        }
        roundtrip(Instr::Mtdcr { dcrn: 0x3FF, rs: 1 });
        roundtrip(Instr::Mfdcr { rt: 2, dcrn: 0x155 });
        roundtrip(Instr::Mtmsr { rs: 7 });
        roundtrip(Instr::Mfmsr { rt: 8 });
        roundtrip(Instr::Mtcrf { rs: 29 });
        roundtrip(Instr::Mfcr { rt: 29 });
        roundtrip(Instr::Rfi);
        roundtrip(Instr::Sync);
        roundtrip(Instr::Isync);
        roundtrip(Instr::Trap);
    }

    #[test]
    fn branch_displacement_sign_extension() {
        let b = Instr::B {
            target: -4,
            link: false,
        };
        match Instr::decode(b.encode()) {
            Instr::B { target, .. } => assert_eq!(target, -4),
            other => panic!("{other:?}"),
        }
        let far = Instr::B {
            target: -(1 << 25),
            link: false,
        };
        match Instr::decode(far.encode()) {
            Instr::B { target, .. } => assert_eq!(target, -(1 << 25)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn split_field_is_an_involution() {
        for n in [0u16, 1, 8, 9, 26, 27, 0x155, 0x3FF] {
            assert_eq!(unsplit10(split10(n)), n);
        }
    }

    #[test]
    fn unknown_words_decode_to_illegal() {
        assert!(matches!(Instr::decode(0xFFFF_FFFF), Instr::Illegal(_)));
        assert!(matches!(Instr::decode(0x0000_0000), Instr::Illegal(_)));
        // opcode 31 with unused XO.
        assert!(matches!(
            Instr::decode((31 << 26) | (1023 << 1)),
            Instr::Illegal(_)
        ));
    }

    #[test]
    fn real_powerpc_encodings_spot_check() {
        // li r3, 1  ==  addi r3, r0, 1  ==  0x38600001
        assert_eq!(
            Instr::Addi {
                rt: 3,
                ra: 0,
                simm: 1
            }
            .encode(),
            0x3860_0001
        );
        // blr == 0x4e800020
        assert_eq!(Instr::Blr.encode(), 0x4E80_0020);
        // mflr r0 == mfspr r0, 8 == 0x7c0802a6
        assert_eq!(
            Instr::Mfspr {
                rt: 0,
                spr: Spr::Lr
            }
            .encode(),
            0x7C08_02A6
        );
        // stw r31, 8(r1) == 0x93e10008
        assert_eq!(
            Instr::Stw {
                rs: 31,
                ra: 1,
                d: 8
            }
            .encode(),
            0x93E1_0008
        );
        // add r3, r4, r5 == 0x7c642a14
        assert_eq!(
            Instr::Add {
                rt: 3,
                ra: 4,
                rb: 5
            }
            .encode(),
            0x7C64_2A14
        );
    }
}
