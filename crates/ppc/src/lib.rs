//! # ppc — a PowerPC-405-subset instruction set simulator
//!
//! The paper drives the AutoVision hardware with embedded software
//! running on an IBM PowerPC ISS "so that the software could run as if it
//! were running on a real processor". This crate is that substrate:
//!
//! * [`insn`] — a typed instruction subset with real PowerPC encodings;
//! * [`asm`] — a two-pass assembler the system software is written in;
//! * [`cpu`] — the architectural core ([`CpuCore`]) and the kernel
//!   component ([`PpcIss`]) that executes it cycle-by-cycle with real PLB
//!   loads/stores and DCR accesses;
//! * [`intc`] — the DCR-programmed interrupt controller that sequences
//!   the frame pipeline's ISRs;
//! * [`disasm`] — a disassembler for trace output.
//!
//! The ISS models a perfect instruction cache (fetch reads the memory
//! image directly) but performs every data access as a real bus
//! transaction — it is the software-visible *timing* of loads, stores and
//! DCR operations that the DPR bugs in this case study depend on, not
//! fetch bandwidth.

pub mod asm;
pub mod cpu;
pub mod disasm;
pub mod insn;
pub mod intc;

pub use asm::{assemble, AsmError, Program};
pub use cpu::{Action, CpuCore, IssConfig, IssStats, PpcIss, MSR_EE};
pub use disasm::disassemble;
pub use insn::{Cond, Instr, Spr};
pub use intc::IntController;
