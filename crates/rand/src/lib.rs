//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny subset of the `rand` API it actually uses: a seedable
//! [`rngs::StdRng`] plus [`RngExt::random`] / [`RngExt::random_range`]
//! for the primitive types that appear in the codebase. The generator is
//! xoshiro256** seeded through splitmix64 — high-quality, deterministic,
//! and stable across platforms, which is all the simulation needs
//! (seeded SimB payload filler, synthetic scenes, test stimulus).
//!
//! Not a cryptographic RNG; never use for secrets.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of 64 random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the full domain.
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform sampling within a half-open or inclusive range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self;
    fn sample_range_incl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "empty range in random_range");
                let span = (high_excl as i128).wrapping_sub(low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((low as i128) + v as i128) as $t
            }
            fn sample_range_incl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range in random_range");
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                ((low as i128) + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
        assert!(low < high_excl, "empty range in random_range");
        low + f64::draw(rng) * (high_excl - low)
    }
    fn sample_range_incl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_range(rng, low, high + f64::EPSILON * high.abs().max(1.0))
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_incl(rng, *self.start(), *self.end())
    }
}

/// Convenience draws layered over any [`RngCore`].
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for call sites written against the classic `Rng` name.
pub use self::RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(2013);
        let mut b = StdRng::seed_from_u64(2013);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 16);
    }

    #[test]
    fn ranges_are_honoured() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = rng.random_range(0..25);
            assert!(v < 25);
            let f: f64 = rng.random_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&f));
            let u: usize = rng.random_range(8..9);
            assert_eq!(u, 8);
            let i: i32 = rng.random_range(-10..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn full_domain_draws_cover_extremes_statistically() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut seen_high_bit = false;
        for _ in 0..64 {
            if rng.random::<u32>() & 0x8000_0000 != 0 {
                seen_high_bit = true;
            }
        }
        assert!(seen_high_bit);
    }
}
