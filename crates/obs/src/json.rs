//! A minimal JSON writer — just enough for the two exporters, with
//! deterministic output (callers iterate ordered maps) and no external
//! dependencies.

/// Escape a string for use inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number. JSON has no NaN/infinity; those
/// degrade to `null`, which every parser accepts.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-roundtrip formatting is deterministic and
        // always contains a digit, which is valid JSON except for the
        // exponent-free integer case ("1" is fine too).
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Format picoseconds as a microsecond timestamp with full (sub-ps-free)
/// precision — the unit Chrome trace's `ts` field expects. Pure integer
/// arithmetic, so identical runs format identically.
pub fn ps_as_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn ps_to_us_keeps_full_precision() {
        assert_eq!(ps_as_us(0), "0.000000");
        assert_eq!(ps_as_us(1_234_567), "1.234567");
        assert_eq!(ps_as_us(10_000), "0.010000");
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(1.5), "1.5");
    }
}
