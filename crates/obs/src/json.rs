//! A minimal JSON writer and reader — just enough for the exporters and
//! the `verifd` wire protocol, with deterministic output (callers
//! iterate ordered maps) and no external dependencies.

/// Escape a string for use inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number. JSON has no NaN/infinity; those
/// degrade to `null`, which every parser accepts.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-roundtrip formatting is deterministic and
        // always contains a digit, which is valid JSON except for the
        // exponent-free integer case ("1" is fine too).
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Format picoseconds as a microsecond timestamp with full (sub-ps-free)
/// precision — the unit Chrome trace's `ts` field expects. Pure integer
/// arithmetic, so identical runs format identically.
pub fn ps_as_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// A parsed JSON value. Numbers keep their source text so 64-bit
/// integers (campaign seeds) survive without a float round-trip; object
/// members keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its literal source text.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(doc: &str) -> Result<Json, String> {
        let b = doc.as_bytes();
        let mut at = 0usize;
        let v = parse_value(b, &mut at)?;
        skip_ws(b, &mut at);
        if at != b.len() {
            return Err(format!("trailing garbage at byte {at}"));
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other kinds or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null` (absent-value checks on optional members).
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(b: &[u8], at: &mut usize, lit: &str) -> Result<(), String> {
    if b[*at..].starts_with(lit.as_bytes()) {
        *at += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {at}"))
    }
}

fn parse_value(b: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(b, at);
    match b.get(*at) {
        None => Err("unexpected end of document".to_string()),
        Some(b'n') => expect(b, at, "null").map(|()| Json::Null),
        Some(b't') => expect(b, at, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, at, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, at).map(Json::Str),
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, at)?);
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {at}")),
                }
            }
        }
        Some(b'{') => {
            *at += 1;
            let mut members = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, at);
                let key = parse_string(b, at)?;
                skip_ws(b, at);
                expect(b, at, ":")?;
                members.push((key, parse_value(b, at)?));
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {at}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *at;
            *at += 1;
            while *at < b.len() && matches!(b[*at], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *at += 1;
            }
            let raw = std::str::from_utf8(&b[start..*at]).expect("digits are ASCII");
            // Validate via the float path; the literal is kept verbatim.
            raw.parse::<f64>()
                .map_err(|_| format!("malformed number `{raw}` at byte {start}"))?;
            Ok(Json::Num(raw.to_string()))
        }
        Some(c) => Err(format!("unexpected byte `{}` at {at}", *c as char)),
    }
}

/// Parse a quoted string, undoing exactly the escapes [`escape`] emits
/// (plus the full `\uXXXX` form, surrogate pairs included).
fn parse_string(b: &[u8], at: &mut usize) -> Result<String, String> {
    if b.get(*at) != Some(&b'"') {
        return Err(format!("expected string at byte {at}"));
    }
    *at += 1;
    let mut out = String::new();
    let mut pending_high: Option<u16> = None;
    loop {
        let c = *b.get(*at).ok_or("unterminated string")?;
        let unit = match c {
            b'"' => {
                *at += 1;
                if pending_high.is_some() {
                    return Err("unpaired surrogate in string".to_string());
                }
                return Ok(out);
            }
            b'\\' => {
                *at += 1;
                let e = *b.get(*at).ok_or("unterminated escape")?;
                *at += 1;
                match e {
                    b'"' => Some('"'.into()),
                    b'\\' => Some('\\'.into()),
                    b'/' => Some('/'.into()),
                    b'n' => Some('\n'.into()),
                    b'r' => Some('\r'.into()),
                    b't' => Some('\t'.into()),
                    b'b' => Some('\u{8}'.into()),
                    b'f' => Some('\u{c}'.into()),
                    b'u' => {
                        let hex = b
                            .get(*at..*at + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u16::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *at += 4;
                        match (pending_high.take(), cp) {
                            (None, 0xD800..=0xDBFF) => {
                                pending_high = Some(cp);
                                None
                            }
                            (None, _) => Some(
                                char::from_u32(cp as u32)
                                    .map(String::from)
                                    .ok_or("invalid code point")?,
                            ),
                            (Some(hi), 0xDC00..=0xDFFF) => {
                                let c =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (cp as u32 - 0xDC00);
                                Some(
                                    char::from_u32(c)
                                        .map(String::from)
                                        .ok_or("invalid surrogate pair")?,
                                )
                            }
                            (Some(_), _) => return Err("unpaired surrogate".to_string()),
                        }
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Consume one UTF-8 scalar starting at `at`.
                let rest = std::str::from_utf8(&b[*at..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                *at += ch.len_utf8();
                Some(ch.into())
            }
        };
        if let Some(s) = unit {
            if pending_high.is_some() {
                return Err("unpaired surrogate in string".to_string());
            }
            out.push_str(&s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn ps_to_us_keeps_full_precision() {
        assert_eq!(ps_as_us(0), "0.000000");
        assert_eq!(ps_as_us(1_234_567), "1.234567");
        assert_eq!(ps_as_us(10_000), "0.010000");
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(1.5), "1.5");
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": true}, "e": "x"}"#;
        let v = Json::parse(doc).expect("parse");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert!(v.get("b").unwrap().get("c").unwrap().is_null());
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn large_integers_survive_without_float_rounding() {
        let v = Json::parse("{\"seed\": 18446744073709551615}").expect("parse");
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn unescape_mirrors_escape() {
        let original = "a\"b\\c\nd\te\u{1}f — π";
        let doc = format!("\"{}\"", escape(original));
        let v = Json::parse(&doc).expect("parse");
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83d\\ude00\"").expect("parse");
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "1 2",
            "\"\\u12\"",
            "tru",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
