//! Chrome-trace/Perfetto JSON exporter.
//!
//! Produces the [Trace Event Format] JSON object that both
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly. Each
//! `(category, track)` pair becomes one named "thread" so every
//! subsystem — and every reconfigurable region within a subsystem —
//! renders as its own timeline row; counter samples become `ph:"C"`
//! counter tracks.
//!
//! Timestamps are simulation picoseconds converted to the format's
//! microsecond unit by pure integer arithmetic, so the export of a
//! deterministic run is byte-deterministic too.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json;
use rtlsim::{TraceCat, TraceEvent, TraceKind};
use std::collections::BTreeMap;

/// The process id every event is filed under (there is one simulator).
const PID: u32 = 1;

fn tid_key(cat: TraceCat, track: u32) -> (u8, u32) {
    let c = match cat {
        TraceCat::Kernel => 0,
        TraceCat::Simb => 1,
        TraceCat::Icap => 2,
        TraceCat::Isolation => 3,
        TraceCat::Retry => 4,
        TraceCat::Dma => 5,
        TraceCat::Engine => 6,
        TraceCat::Isr => 7,
        TraceCat::Portal => 8,
        TraceCat::Sw => 9,
    };
    (c, track)
}

fn thread_name(cat: TraceCat, track: u32) -> String {
    if track == 0 {
        cat.label().to_string()
    } else {
        format!("{} rr{}", cat.label(), track)
    }
}

/// Serialize a trace-event stream as a Chrome-trace JSON object.
pub fn export(events: &[TraceEvent]) -> String {
    export_with_fallback(events, &[])
}

/// [`export`] plus the compiled plane's dirty-window fallback intervals
/// (`Simulator::fallback_windows`) rendered as spans on a dedicated
/// "exec fallback" row. Each `(entry_ps, exit_ps)` pair becomes one
/// `fallback` span; an open window (`exit_ps == u64::MAX`) is drawn
/// from its entry to the last trace event. With no windows the output
/// is byte-identical to [`export`].
pub fn export_with_fallback(events: &[TraceEvent], windows: &[(u64, u64)]) -> String {
    // Stable tid assignment: ordered by (category, track), independent
    // of event order.
    let mut tids: BTreeMap<(u8, u32), u32> = BTreeMap::new();
    for ev in events {
        let next = tids.len() as u32 + 1;
        tids.entry(tid_key(ev.cat, ev.track)).or_insert(next);
    }
    // Re-number in key order so identical event *sets* export
    // identically regardless of first-seen order.
    for (i, v) in tids.values_mut().enumerate() {
        *v = i as u32 + 1;
    }

    let mut lines: Vec<String> = Vec::with_capacity(events.len() + tids.len() + 1);
    lines.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
         \"args\":{{\"name\":\"rtlsim\"}}}}"
    ));
    let mut names: Vec<(u32, String)> = Vec::new();
    for ev in events {
        let tid = tids[&tid_key(ev.cat, ev.track)];
        if !names.iter().any(|(t, _)| *t == tid) {
            names.push((tid, thread_name(ev.cat, ev.track)));
        }
    }
    names.sort_by_key(|(t, _)| *t);
    for (tid, name) in &names {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json::escape(name)
        ));
    }

    for ev in events {
        let tid = tids[&tid_key(ev.cat, ev.track)];
        let ts = json::ps_as_us(ev.time_ps);
        let name = json::escape(ev.name);
        let cat = ev.cat.label();
        let line = match ev.kind {
            TraceKind::Begin => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{ts},\
                 \"pid\":{PID},\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                ev.arg
            ),
            TraceKind::End => format!(
                "{{\"ph\":\"E\",\"ts\":{ts},\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"arg\":{}}}}}",
                ev.arg
            ),
            TraceKind::Instant => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":{PID},\"tid\":{tid},\"s\":\"t\",\"args\":{{\"arg\":{}}}}}",
                ev.arg
            ),
            TraceKind::Counter => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"C\",\"ts\":{ts},\
                 \"pid\":{PID},\"tid\":{tid},\"args\":{{\"value\":{}}}}}",
                ev.arg
            ),
        };
        lines.push(line);
    }

    if !windows.is_empty() {
        let tid = tids.len() as u32 + 1;
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"exec fallback\"}}}}"
        ));
        let horizon = events.iter().map(|e| e.time_ps).max().unwrap_or(0);
        for &(entry, exit) in windows {
            let end = if exit == u64::MAX {
                horizon.max(entry)
            } else {
                exit
            };
            lines.push(format!(
                "{{\"name\":\"fallback\",\"cat\":\"kernel\",\"ph\":\"B\",\"ts\":{},\
                 \"pid\":{PID},\"tid\":{tid},\"args\":{{\"arg\":0}}}}",
                json::ps_as_us(entry)
            ));
            lines.push(format!(
                "{{\"ph\":\"E\",\"ts\":{},\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"arg\":0}}}}",
                json::ps_as_us(end)
            ));
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n",
        lines.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, time_ps: u64, kind: TraceKind, cat: TraceCat, track: u32) -> TraceEvent {
        TraceEvent {
            time_ps,
            seq,
            kind,
            cat,
            name: "transfer",
            track,
            arg: 7,
        }
    }

    #[test]
    fn export_contains_matched_span_and_thread_names() {
        let evs = [
            ev(1, 1_000_000, TraceKind::Begin, TraceCat::Simb, 1),
            ev(2, 3_000_000, TraceKind::End, TraceCat::Simb, 1),
            ev(3, 2_000_000, TraceKind::Counter, TraceCat::Kernel, 0),
        ];
        let out = export(&evs);
        assert!(out.contains("\"ph\":\"B\""));
        assert!(out.contains("\"ph\":\"E\""));
        assert!(out.contains("\"ph\":\"C\""));
        assert!(out.contains("\"name\":\"simb rr1\""));
        assert!(out.contains("\"name\":\"kernel\""));
        assert!(out.contains("\"ts\":1.000000"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(
            out.matches('{').count(),
            out.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }

    #[test]
    fn export_is_independent_of_first_seen_order() {
        let a = [
            ev(1, 100, TraceKind::Instant, TraceCat::Simb, 2),
            ev(2, 200, TraceKind::Instant, TraceCat::Simb, 1),
        ];
        let b = [
            ev(1, 100, TraceKind::Instant, TraceCat::Simb, 1),
            ev(2, 200, TraceKind::Instant, TraceCat::Simb, 2),
        ];
        // tid of (Simb, 1) must be the same in both exports.
        let ta = export(&a);
        let tb = export(&b);
        let tid_of = |s: &str| {
            s.lines()
                .find(|l| l.contains("simb rr1"))
                .unwrap()
                .to_string()
        };
        assert_eq!(tid_of(&ta), tid_of(&tb));
    }

    #[test]
    fn fallback_windows_render_on_their_own_row() {
        let evs = [
            ev(1, 1_000_000, TraceKind::Begin, TraceCat::Simb, 1),
            ev(2, 9_000_000, TraceKind::End, TraceCat::Simb, 1),
        ];
        // No windows: byte-identical to the plain export.
        assert_eq!(export(&evs), export_with_fallback(&evs, &[]));
        // One closed window plus one still open at the end of the run.
        let out = export_with_fallback(&evs, &[(2_000_000, 4_000_000), (8_000_000, u64::MAX)]);
        assert!(out.contains("\"name\":\"exec fallback\""));
        assert!(out.contains("\"name\":\"fallback\""));
        assert!(out.contains("\"ts\":2.000000"));
        // The open window clamps to the last trace event, not u64::MAX.
        assert!(out.contains("\"ts\":9.000000"));
        assert!(!out.contains("18446744073709"));
        assert_eq!(out.matches("\"ph\":\"B\"").count(), 3);
        assert_eq!(out.matches("\"ph\":\"E\"").count(), 3);
    }
}
