//! The central metrics registry: named counters, gauges and log₂-bucket
//! histograms with a stable-schema JSON snapshot.
//!
//! Every producer — kernel stats, backend stats, the profiler, span
//! durations derived from the trace — folds into one registry, so a
//! bench bin's `--metrics-out` artifact is a single self-describing
//! document rather than one ad-hoc printout per subsystem.

use crate::json;
use std::collections::BTreeMap;

/// Schema identifier stamped into every snapshot. Bump on any breaking
/// change to the snapshot layout; CI validates it.
pub const METRICS_SCHEMA: &str = "obs_metrics/v1";

/// A log₂-bucket histogram of `u64` observations (durations in ps, queue
/// depths...). Bucket `i` counts observations with
/// `2^(i-1) < value <= 2^i` (bucket 0 counts zeros and ones).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            // ceil(log2(v)) = bit length of v-1.
            (64 - (v - 1).leading_zeros()) as usize
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum += v;
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Fold another histogram into this one, as if every observation of
    /// `other` had been recorded here too. Used to aggregate per-worker
    /// histograms into one campaign-wide distribution.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs in ascending
    /// bound order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let bound = if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i).max(1)
                };
                (bound, *c)
            })
            .collect()
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .buckets()
            .iter()
            .map(|(b, c)| format!("[{b},{c}]"))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min,
            self.max,
            json::number(self.mean()),
            buckets.join(",")
        )
    }
}

/// Named counters, gauges and histograms. Names are free-form
/// dot-separated paths (`icap.swaps`, `region.1.isolation_pulses`);
/// ordered maps keep snapshots deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Set a counter to an absolute value (the common case here: stat
    /// structs already hold cumulative totals).
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Add to a counter (creates it at 0).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Fold a pre-built histogram into the named histogram (see
    /// [`Histogram::merge`]). Lets producers that already aggregate
    /// per-worker distributions publish them under one name.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Read a counter back (0 when absent).
    pub fn get_counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read a gauge back.
    pub fn get_gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Read a histogram back.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Serialize the registry as a `obs_metrics/v1` JSON document:
    ///
    /// ```json
    /// {"schema":"obs_metrics/v1",
    ///  "counters":{"icap.swaps":4},
    ///  "gauges":{"bench.wall_s":0.71},
    ///  "histograms":{"span.simb.transfer_ps":{"count":4,...}}}
    /// ```
    pub fn snapshot_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json::escape(k), v))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json::escape(k), json::number(*v)))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| format!("\"{}\":{}", json::escape(k), h.to_json()))
            .collect();
        format!(
            "{{\n\"schema\":\"{}\",\n\"counters\":{{{}}},\n\"gauges\":{{{}}},\n\"histograms\":{{{}}}\n}}\n",
            METRICS_SCHEMA,
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // zeros+ones -> bound 1; 2 -> 2; 3..4 -> 4; 1000 -> 1024.
        assert_eq!(h.buckets(), vec![(1, 2), (2, 1), (4, 2), (1024, 1)]);
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for v in [0u64, 3, 17] {
            a.observe(v);
            whole.observe(v);
        }
        for v in [2u64, 4096] {
            b.observe(v);
            whole.observe(v);
        }
        a.merge(&b);
        assert_eq!((a.count, a.sum, a.min, a.max), (5, 4118, 0, 4096));
        assert_eq!(a.buckets(), whole.buckets());
        // Merging an empty histogram is a no-op either way.
        a.merge(&Histogram::default());
        assert_eq!(a.buckets(), whole.buckets());
        let mut empty = Histogram::default();
        empty.merge(&whole);
        assert_eq!(empty.buckets(), whole.buckets());
        assert_eq!(empty.min, 0);
    }

    #[test]
    fn snapshot_is_deterministic_and_tagged() {
        let mut r = MetricsRegistry::new();
        r.counter("b", 2);
        r.counter("a", 1);
        r.gauge("g", 0.5);
        r.observe("h", 7);
        let s1 = r.snapshot_json();
        let s2 = r.clone().snapshot_json();
        assert_eq!(s1, s2);
        assert!(s1.contains("\"schema\":\"obs_metrics/v1\""));
        // BTreeMap ordering: "a" serializes before "b".
        assert!(s1.find("\"a\":1").unwrap() < s1.find("\"b\":2").unwrap());
    }
}
