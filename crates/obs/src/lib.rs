//! # obs — the observability facade
//!
//! One place where the repository's scattered measurement machinery
//! converges: [`rtlsim`]'s structured trace events, the sampling
//! profiler, kernel statistics and subsystem stat structs all feed a
//! central [`MetricsRegistry`], and two exporters turn a finished run
//! into artifacts:
//!
//! * [`perfetto::export`] — Chrome-trace/Perfetto JSON of the recorded
//!   spans (`chrome://tracing` or <https://ui.perfetto.dev> render it as
//!   a per-subsystem timeline: SimB transfers per region, isolation
//!   windows, ISR activity, DMA bursts...).
//! * [`MetricsRegistry::snapshot_json`] — a stable-schema
//!   (`obs_metrics/v1`) JSON snapshot of counters, gauges and
//!   histograms, fit for diffing across runs and for CI schema checks.
//!
//! The crate is deliberately thin — plain data in, strings out — and
//! hand-rolls its JSON (the workspace has no serde; its external surface
//! is the three vendored shims).

pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod span;

pub use metrics::{Histogram, MetricsRegistry, METRICS_SCHEMA};
pub use span::{span_durations, Span};

use rtlsim::profile::ProfileRow;
use rtlsim::{CompKind, SimStats};

/// Fold kernel statistics into the registry under `kernel.*`.
pub fn record_sim_stats(reg: &mut MetricsRegistry, stats: &SimStats) {
    reg.counter("kernel.evals", stats.evals);
    reg.counter("kernel.deltas", stats.deltas);
    reg.counter("kernel.time_points", stats.time_points);
    reg.counter("kernel.toggles", stats.toggles);
    reg.counter("kernel.events", stats.events);
}

fn kind_label(kind: CompKind) -> &'static str {
    match kind {
        CompKind::UserStatic => "user_static",
        CompKind::UserReconf => "user_reconf",
        CompKind::Artifact => "artifact",
        CompKind::Vip => "vip",
    }
}

/// Fold a profiler report into the registry: per component kind, the
/// fraction of estimated eval time and the eval count — the §V overhead
/// profile as metrics instead of a printed table.
pub fn record_profile(reg: &mut MetricsRegistry, rows: &[ProfileRow]) {
    for kind in [
        CompKind::UserStatic,
        CompKind::UserReconf,
        CompKind::Artifact,
        CompKind::Vip,
    ] {
        let label = kind_label(kind);
        let of_kind: Vec<&ProfileRow> = rows.iter().filter(|r| r.kind == kind).collect();
        let evals: u64 = of_kind.iter().map(|r| r.evals).sum();
        let fraction: f64 = of_kind.iter().map(|r| r.fraction).sum();
        reg.counter(&format!("profile.{label}.evals"), evals);
        reg.gauge(&format!("profile.{label}.fraction"), fraction);
    }
}
