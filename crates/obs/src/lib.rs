//! # obs — the observability facade
//!
//! One place where the repository's scattered measurement machinery
//! converges: [`rtlsim`]'s structured trace events, the sampling
//! profiler, kernel statistics and subsystem stat structs all feed a
//! central [`MetricsRegistry`], and two exporters turn a finished run
//! into artifacts:
//!
//! * [`perfetto::export`] — Chrome-trace/Perfetto JSON of the recorded
//!   spans (`chrome://tracing` or <https://ui.perfetto.dev> render it as
//!   a per-subsystem timeline: SimB transfers per region, isolation
//!   windows, ISR activity, DMA bursts...).
//! * [`MetricsRegistry::snapshot_json`] — a stable-schema
//!   (`obs_metrics/v1`) JSON snapshot of counters, gauges and
//!   histograms, fit for diffing across runs and for CI schema checks.
//!
//! The crate is deliberately thin — plain data in, strings out — and
//! hand-rolls its JSON (the workspace has no serde; its external surface
//! is the three vendored shims).

pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod span;

pub use metrics::{Histogram, MetricsRegistry, METRICS_SCHEMA};
pub use span::{span_durations, Span};

use rtlsim::profile::ProfileRow;
use rtlsim::{CompKind, CompiledStats, SimStats};

/// Fold kernel statistics into the registry under `kernel.*`.
pub fn record_sim_stats(reg: &mut MetricsRegistry, stats: &SimStats) {
    reg.counter("kernel.evals", stats.evals);
    reg.counter("kernel.deltas", stats.deltas);
    reg.counter("kernel.time_points", stats.time_points);
    reg.counter("kernel.toggles", stats.toggles);
    reg.counter("kernel.events", stats.events);
}

/// Fold compiled-plane statistics into the registry under `compiled.*`:
/// the plan shape (sequential rank, levelized comb depth), the dispatch
/// filter's work avoidance (edge/parked skips, parks, wakes), and the
/// steady-state vs dirty-window fallback split.
pub fn record_compiled_stats(reg: &mut MetricsRegistry, stats: &CompiledStats) {
    reg.counter("compiled.compile_nanos", stats.compile_nanos);
    reg.counter("compiled.schedule_comps", stats.schedule_comps);
    reg.counter("compiled.seq_rank", stats.seq_rank);
    reg.counter("compiled.comb_comps", stats.comb_comps);
    reg.counter("compiled.comb_levels", stats.comb_levels);
    reg.counter("compiled.comb_cyclic", stats.comb_cyclic);
    reg.counter("compiled.skipped_edge", stats.skipped_edge);
    reg.counter("compiled.skipped_parked", stats.skipped_parked);
    reg.counter("compiled.parks", stats.parks);
    reg.counter("compiled.signal_wakes", stats.signal_wakes);
    reg.counter("compiled.doorbell_rings", stats.doorbell_rings);
    reg.counter("compiled.fallback_entries", stats.fallback_entries);
    reg.counter("compiled.fallback_exits", stats.fallback_exits);
    reg.counter("compiled.steady_points", stats.steady_points);
    reg.counter("compiled.fallback_points", stats.fallback_points);
    let total = stats.steady_points + stats.fallback_points;
    if total > 0 {
        reg.gauge(
            "compiled.fallback_share",
            stats.fallback_points as f64 / total as f64,
        );
    }
}

fn kind_label(kind: CompKind) -> &'static str {
    match kind {
        CompKind::UserStatic => "user_static",
        CompKind::UserReconf => "user_reconf",
        CompKind::Artifact => "artifact",
        CompKind::Vip => "vip",
    }
}

/// Fold a profiler report into the registry: per component kind, the
/// fraction of estimated eval time and the eval count — the §V overhead
/// profile as metrics instead of a printed table.
pub fn record_profile(reg: &mut MetricsRegistry, rows: &[ProfileRow]) {
    for kind in [
        CompKind::UserStatic,
        CompKind::UserReconf,
        CompKind::Artifact,
        CompKind::Vip,
    ] {
        let label = kind_label(kind);
        let of_kind: Vec<&ProfileRow> = rows.iter().filter(|r| r.kind == kind).collect();
        let evals: u64 = of_kind.iter().map(|r| r.evals).sum();
        let fraction: f64 = of_kind.iter().map(|r| r.fraction).sum();
        reg.counter(&format!("profile.{label}.evals"), evals);
        reg.gauge(&format!("profile.{label}.fraction"), fraction);
    }
}
