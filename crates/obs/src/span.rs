//! Span reconstruction: pair `Begin`/`End` trace events back into
//! durations, per `(category, name, track)` lane.

use rtlsim::{TraceCat, TraceEvent, TraceKind};

/// A reconstructed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Category of the span.
    pub cat: TraceCat,
    /// Span name.
    pub name: &'static str,
    /// Lane within the category (region id for region-scoped spans).
    pub track: u32,
    /// Begin time (ps).
    pub start_ps: u64,
    /// End time (ps).
    pub end_ps: u64,
    /// Argument carried by the `Begin` event.
    pub arg: u64,
}

impl Span {
    /// Span duration in picoseconds.
    pub fn duration_ps(&self) -> u64 {
        self.end_ps - self.start_ps
    }
}

/// Reconstruct all completed spans matching `cat` and `name` from an
/// event stream, per track, in begin order. Nested spans on one track
/// pair innermost-first (stack discipline); an unmatched `Begin` (still
/// open when the trace ends) is dropped.
pub fn span_durations(events: &[TraceEvent], cat: TraceCat, name: &str) -> Vec<Span> {
    let mut open: Vec<(u32, u64, u64)> = Vec::new(); // (track, start, arg)
    let mut out = Vec::new();
    for ev in events {
        if ev.cat != cat || ev.name != name {
            continue;
        }
        match ev.kind {
            TraceKind::Begin => open.push((ev.track, ev.time_ps, ev.arg)),
            TraceKind::End => {
                if let Some(pos) = open.iter().rposition(|(t, _, _)| *t == ev.track) {
                    let (track, start_ps, arg) = open.remove(pos);
                    out.push(Span {
                        cat,
                        name: ev.name,
                        track,
                        start_ps,
                        end_ps: ev.time_ps,
                        arg,
                    });
                }
            }
            _ => {}
        }
    }
    out.sort_by_key(|s| (s.start_ps, s.track));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, time_ps: u64, kind: TraceKind, track: u32) -> TraceEvent {
        TraceEvent {
            time_ps,
            seq,
            kind,
            cat: TraceCat::Simb,
            name: "transfer",
            track,
            arg: track as u64,
        }
    }

    #[test]
    fn pairs_interleaved_tracks() {
        let evs = [
            ev(1, 100, TraceKind::Begin, 1),
            ev(2, 150, TraceKind::Begin, 2),
            ev(3, 200, TraceKind::End, 1),
            ev(4, 300, TraceKind::End, 2),
            ev(5, 400, TraceKind::Begin, 1), // left open: dropped
        ];
        let spans = span_durations(&evs, TraceCat::Simb, "transfer");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].track, 1);
        assert_eq!(spans[0].duration_ps(), 100);
        assert_eq!(spans[1].track, 2);
        assert_eq!(spans[1].duration_ps(), 150);
    }
}
