//! Kernel fuzzing: random combinational netlists must settle to the
//! same values a direct topological evaluation produces, for random
//! 4-value inputs — regardless of component registration order or which
//! input pokes trigger re-evaluation.

use proptest::prelude::*;
use rtlsim::{CompKind, Ctx, Lv, SignalId, Simulator};

#[derive(Debug, Clone, Copy)]
enum Gate {
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Not(usize),
}

/// A random DAG: `n_inputs` primary inputs, then `gates[i]` reads only
/// nodes with smaller indices.
#[derive(Debug, Clone)]
struct Netlist {
    n_inputs: usize,
    gates: Vec<Gate>,
}

fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..=6, 1usize..=24).prop_flat_map(|(n_inputs, n_gates)| {
        let gate = move |idx: usize| {
            let max = n_inputs + idx;
            (0..4u8, 0..max, 0..max).prop_map(move |(kind, a, b)| match kind {
                0 => Gate::And(a, b),
                1 => Gate::Or(a, b),
                2 => Gate::Xor(a, b),
                _ => Gate::Not(a),
            })
        };
        let gates: Vec<_> = (0..n_gates).map(gate).collect();
        gates.prop_map(move |gates| Netlist { n_inputs, gates })
    })
}

fn reference_eval(nl: &Netlist, inputs: &[Lv]) -> Vec<Lv> {
    let mut vals: Vec<Lv> = inputs.to_vec();
    for g in &nl.gates {
        let v = match *g {
            Gate::And(a, b) => vals[a] & vals[b],
            Gate::Or(a, b) => vals[a] | vals[b],
            Gate::Xor(a, b) => vals[a] ^ vals[b],
            Gate::Not(a) => !vals[a],
        };
        vals.push(v);
    }
    vals
}

fn build_sim(nl: &Netlist) -> (Simulator, Vec<SignalId>) {
    let mut sim = Simulator::new();
    let mut sigs = Vec::new();
    for i in 0..nl.n_inputs {
        sigs.push(sim.signal_init(format!("in{i}"), 8, 0));
    }
    for (i, _) in nl.gates.iter().enumerate() {
        sigs.push(sim.signal(format!("g{i}"), 8));
    }
    // Register gates in REVERSE order to stress delta-cycle convergence
    // (downstream gates are registered before their drivers).
    for (i, g) in nl.gates.iter().enumerate().rev() {
        let out = sigs[nl.n_inputs + i];
        let g = *g;
        let (sa, sb) = match g {
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => (sigs[a], sigs[b]),
            Gate::Not(a) => (sigs[a], sigs[a]),
        };
        sim.add_component(
            format!("gate{i}"),
            CompKind::UserStatic,
            Box::new(move |ctx: &mut Ctx<'_>| {
                let v = match g {
                    Gate::And(..) => ctx.get(sa) & ctx.get(sb),
                    Gate::Or(..) => ctx.get(sa) | ctx.get(sb),
                    Gate::Xor(..) => ctx.get(sa) ^ ctx.get(sb),
                    Gate::Not(..) => !ctx.get(sa),
                };
                ctx.set(out, v);
            }),
            &[sa, sb],
        );
    }
    (sim, sigs)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_netlists_settle_to_the_reference_fixpoint(
        nl in arb_netlist(),
        stimuli in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let n = nl.n_inputs;
        let (mut sim, sigs) = build_sim(&nl);
        // Apply a few rounds of input changes, checking convergence after
        // each (events between rounds stress incremental re-evaluation).
        let mut inputs = vec![Lv::zeros(8); n];
        sim.settle().unwrap();
        for (round, idx) in stimuli.iter().enumerate() {
            // Derive new input values deterministically from the index.
            for (i, item) in inputs.iter_mut().enumerate() {
                let raw = (idx.index(251) * (i + 17) * (round + 3)) as u64;
                *item = Lv::from_planes(8, raw, raw >> 7);
            }
            for (i, v) in inputs.iter().enumerate() {
                sim.poke(sigs[i], *v);
            }
            sim.settle().unwrap();
            let want = reference_eval(&nl, &inputs);
            for (j, w) in want.iter().enumerate() {
                let got = sim.peek(sigs[j]);
                prop_assert!(
                    got.eq_case(w),
                    "round {round}, node {j}: got {got:?}, want {w:?}"
                );
            }
        }
    }
}
