//! Property-based tests for the four-value logic vector type.
//!
//! The strategy generates arbitrary 4-value vectors (independent value and
//! unknown planes) and checks the algebraic laws the kernel relies on,
//! plus consistency between vector operators and the scalar truth tables.

use proptest::prelude::*;
use rtlsim::{Logic, Lv};

fn arb_lv(max_width: u8) -> impl Strategy<Value = Lv> {
    (1..=max_width, any::<u64>(), any::<u64>()).prop_map(|(w, val, xz)| Lv::from_planes(w, val, xz))
}

fn arb_lv_pair() -> impl Strategy<Value = (Lv, Lv)> {
    (
        1u8..=64,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(w, v1, x1, v2, x2)| (Lv::from_planes(w, v1, x1), Lv::from_planes(w, v2, x2)))
}

proptest! {
    /// Vector bitwise ops agree with the scalar truth tables bit by bit.
    #[test]
    fn bitwise_matches_scalar((a, b) in arb_lv_pair()) {
        let and = a & b;
        let or = a | b;
        let xor = a ^ b;
        let not_a = !a;
        for i in 0..a.width() {
            prop_assert_eq!(and.get(i), a.get(i) & b.get(i));
            prop_assert_eq!(or.get(i), a.get(i) | b.get(i));
            prop_assert_eq!(xor.get(i), a.get(i) ^ b.get(i));
            prop_assert_eq!(not_a.get(i), !a.get(i));
        }
    }

    /// De Morgan holds in 4-value logic at the vector level.
    #[test]
    fn de_morgan((a, b) in arb_lv_pair()) {
        prop_assert!((!(a & b)).eq_case(&(!a | !b)));
        prop_assert!((!(a | b)).eq_case(&(!a & !b)));
    }

    /// AND/OR/XOR are commutative and associative.
    #[test]
    fn commutative_and_associative((a, b) in arb_lv_pair(), c_planes in (any::<u64>(), any::<u64>())) {
        let c = Lv::from_planes(a.width(), c_planes.0, c_planes.1);
        prop_assert!((a & b).eq_case(&(b & a)));
        prop_assert!((a | b).eq_case(&(b | a)));
        prop_assert!((a ^ b).eq_case(&(b ^ a)));
        prop_assert!(((a & b) & c).eq_case(&(a & (b & c))));
        prop_assert!(((a | b) | c).eq_case(&(a | (b | c))));
        prop_assert!(((a ^ b) ^ c).eq_case(&(a ^ (b ^ c))));
    }

    /// Identity and annihilator elements, modulo Z -> X normalisation
    /// (any gate converts a floating input to unknown, so `Z & 1 = X`).
    #[test]
    fn identities(a in arb_lv(64)) {
        let w = a.width();
        let norm = !!a; // X-normalised copy: Z bits become X
        prop_assert!((a & Lv::ones(w)).eq_case(&norm));
        prop_assert!((a | Lv::zeros(w)).eq_case(&norm));
        prop_assert!((a & Lv::zeros(w)).eq_case(&Lv::zeros(w)));
        prop_assert!((a | Lv::ones(w)).eq_case(&Lv::ones(w)));
    }

    /// Double negation restores the X-normalised value (Z becomes X but
    /// then stays stable).
    #[test]
    fn double_negation_stabilises(a in arb_lv(64)) {
        let n2 = !!a;
        let n4 = !!n2;
        prop_assert!(n2.eq_case(&n4));
    }

    /// Known vectors behave exactly like u64 arithmetic modulo width.
    #[test]
    fn known_arithmetic_matches_u64(w in 1u8..=64, a in any::<u64>(), b in any::<u64>()) {
        let m = if w == 64 { u64::MAX } else { (1 << w) - 1 };
        let (a, b) = (a & m, b & m);
        let la = Lv::from_u64(w, a);
        let lb = Lv::from_u64(w, b);
        prop_assert_eq!((la + lb).to_u64(), Some(a.wrapping_add(b) & m));
        prop_assert_eq!((la - lb).to_u64(), Some(a.wrapping_sub(b) & m));
        prop_assert_eq!(la.lt(&lb), Logic::from_bool(a < b));
    }

    /// Any unknown operand poisons arithmetic entirely.
    #[test]
    fn unknown_poisons_arithmetic(a in arb_lv(64), b in any::<u64>()) {
        prop_assume!(a.has_unknown());
        let w = a.width();
        let known = Lv::from_u64(w, b);
        prop_assert!((a + known).eq_case(&Lv::xes(w)));
        prop_assert!((known - a).eq_case(&Lv::xes(w)));
        prop_assert_eq!(a.lt(&known), Logic::X);
    }

    /// Slicing then concatenating reconstructs the original vector.
    #[test]
    fn slice_concat_round_trip(a in arb_lv(64), cut in 0u8..63) {
        prop_assume!(a.width() >= 2);
        let cut = cut % (a.width() - 1); // 0..width-1
        let hi = a.slice(a.width() - 1, cut + 1);
        let lo = a.slice(cut, 0);
        prop_assert!(hi.concat(lo).eq_case(&a));
    }

    /// with_bit/get round trip for every logic value.
    #[test]
    fn bit_set_get_round_trip(a in arb_lv(64), i in 0u8..64, which in 0usize..4) {
        let i = i % a.width();
        let l = Logic::ALL[which];
        let b = a.with_bit(i, l);
        prop_assert_eq!(b.get(i), l);
        // Other bits untouched.
        for j in 0..a.width() {
            if j != i {
                prop_assert_eq!(b.get(j), a.get(j));
            }
        }
    }

    /// Reductions agree with a fold over scalar bits.
    #[test]
    fn reductions_match_scalar_fold(a in arb_lv(64)) {
        let mut and = Logic::One;
        let mut or = Logic::Zero;
        let mut xor = Logic::Zero;
        for i in 0..a.width() {
            and = and & a.get(i);
            or = or | a.get(i);
            xor = xor ^ a.get(i);
        }
        prop_assert_eq!(a.reduce_and(), and);
        prop_assert_eq!(a.reduce_or(), or);
        prop_assert_eq!(a.reduce_xor(), xor);
    }

    /// Resolution is commutative, idempotent, and Z is the identity.
    #[test]
    fn resolution_laws((a, b) in arb_lv_pair()) {
        prop_assert!(a.resolve(&b).eq_case(&b.resolve(&a)));
        prop_assert!(a.resolve(&a).eq_case(&a));
        let z = Lv::zs(a.width());
        prop_assert!(a.resolve(&z).eq_case(&a));
    }

    /// parse_bits(debug-format) round-trips.
    #[test]
    fn parse_debug_round_trip(a in arb_lv(64)) {
        let s = format!("{a:?}");
        let body = s.split("'b").nth(1).unwrap();
        let parsed = Lv::parse_bits(body).unwrap();
        prop_assert!(parsed.eq_case(&a));
    }

    /// to_u64_lossy equals to_u64 when fully known, and never exposes
    /// unknown bits as ones.
    #[test]
    fn lossy_consistency(a in arb_lv(64)) {
        if let Some(v) = a.to_u64() {
            prop_assert_eq!(a.to_u64_lossy(), v);
        }
        prop_assert_eq!(a.to_u64_lossy() & a.xz_plane(), 0);
    }
}
