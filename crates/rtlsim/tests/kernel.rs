//! Integration tests for the simulation kernel: scheduling semantics,
//! delta cycles, X propagation, tracing and diagnostics.

use rtlsim::{Clock, CompKind, Ctx, Logic, Lv, Severity, SimError, Simulator};

const PERIOD: u64 = 10_000; // 10 ns

fn clocked_system() -> (Simulator, rtlsim::SignalId) {
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    (sim, clk)
}

/// A chain of flip-flops must shift one position per clock edge, proving
/// that all clocked components read pre-edge values (non-blocking
/// assignment semantics). A naive immediate-update kernel would collapse
/// the chain in a single cycle.
#[test]
fn flip_flop_chain_has_nba_semantics() {
    let (mut sim, clk) = clocked_system();
    let stages = 8;
    let mut regs = Vec::new();
    for i in 0..=stages {
        regs.push(sim.signal_init(format!("st{i}"), 8, 0));
    }
    // Source drives a new value every cycle.
    let src = regs[0];
    sim.add_component(
        "src",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) {
                let v = ctx.get(src) + Lv::from_u64(8, 1);
                ctx.set(src, v);
            }
        }),
        &[clk],
    );
    for i in 0..stages {
        let d = regs[i];
        let q = regs[i + 1];
        sim.add_component(
            format!("ff{i}"),
            CompKind::UserStatic,
            Box::new(move |ctx: &mut Ctx<'_>| {
                if ctx.rose(clk) {
                    ctx.set(q, ctx.get(d));
                }
            }),
            &[clk],
        );
    }
    // After N posedges the last stage lags the source by `stages` cycles.
    let cycles = 20u64;
    sim.run_until(PERIOD / 2 + (cycles - 1) * PERIOD + 1)
        .unwrap();
    let head = sim.peek_u64(regs[0]).unwrap();
    let tail = sim.peek_u64(regs[stages]).unwrap();
    assert_eq!(head, cycles);
    assert_eq!(tail, cycles - stages as u64);
}

/// Combinational logic must settle through multiple deltas within a
/// single time step.
#[test]
fn combinational_chain_settles_in_zero_time() {
    let mut sim = Simulator::new();
    let a = sim.signal_init("a", 8, 0);
    let mut prev = a;
    let mut last = a;
    for i in 0..16 {
        let next = sim.signal(format!("n{i}"), 8);
        let p = prev;
        sim.add_component(
            format!("inc{i}"),
            CompKind::UserStatic,
            Box::new(move |ctx: &mut Ctx<'_>| {
                ctx.set(next, ctx.get(p) + Lv::from_u64(8, 1));
            }),
            &[p],
        );
        prev = next;
        last = next;
    }
    sim.settle().unwrap();
    assert_eq!(sim.peek_u64(last), Some(16));
    assert_eq!(sim.now(), 0, "combinational settling must not advance time");
    // Poke the head and re-settle: the whole chain follows.
    sim.poke_u64(a, 100);
    sim.settle().unwrap();
    assert_eq!(sim.peek_u64(last), Some(116));
}

/// Two cross-coupled inverters with no stable point must hit the delta
/// limit rather than hang.
#[test]
fn oscillation_hits_delta_limit() {
    let mut sim = Simulator::new();
    let a = sim.signal_init("a", 1, 0);
    sim.add_component(
        "osc",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            let v = !ctx.get(a);
            ctx.set(a, v);
        }),
        &[a],
    );
    let err = sim.settle().unwrap_err();
    assert!(matches!(err, SimError::DeltaOverflow { time_ps: 0 }));
}

/// X driven into a combinational cone reaches the output, and dominance
/// (`0 & X = 0`) stops it where logic permits.
#[test]
fn x_propagates_through_combinational_logic() {
    let mut sim = Simulator::new();
    let a = sim.signal_init("a", 4, 0xF);
    let b = sim.signal_init("b", 4, 0x0);
    let and_out = sim.signal("and_out", 4);
    let or_out = sim.signal("or_out", 4);
    sim.add_component(
        "gates",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            ctx.set(and_out, ctx.get(a) & ctx.get(b));
            ctx.set(or_out, ctx.get(a) | ctx.get(b));
        }),
        &[a, b],
    );
    sim.settle().unwrap();
    assert_eq!(sim.peek_u64(and_out), Some(0));
    assert_eq!(sim.peek_u64(or_out), Some(0xF));
    // Now corrupt `a` as the ReSim error injector would.
    sim.poke(a, Lv::xes(4));
    sim.settle().unwrap();
    // 0 & X = 0: the AND output stays clean.
    assert_eq!(sim.peek_u64(and_out), Some(0));
    // 0 | X = X: the OR output is poisoned.
    assert!(sim.peek(or_out).eq_case(&Lv::xes(4)));
}

/// Edge queries must distinguish posedge from negedge and not re-trigger
/// on unrelated deltas.
#[test]
fn edge_detection_counts_each_edge_once() {
    let (mut sim, clk) = clocked_system();
    let rises = sim.signal_init("rises", 16, 0);
    let falls = sim.signal_init("falls", 16, 0);
    sim.add_component(
        "edgecnt",
        CompKind::Vip,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) {
                let v = ctx.get(rises) + Lv::from_u64(16, 1);
                ctx.set(rises, v);
            }
            if ctx.fell(clk) {
                let v = ctx.get(falls) + Lv::from_u64(16, 1);
                ctx.set(falls, v);
            }
        }),
        &[clk],
    );
    sim.run_until(10 * PERIOD).unwrap(); // edges at 5,10,...,100 ns
    assert_eq!(sim.peek_u64(rises), Some(10));
    assert_eq!(sim.peek_u64(falls), Some(10));
}

/// `set_after` implements transport delay across time steps.
#[test]
fn transport_delay_lands_on_schedule() {
    let mut sim = Simulator::new();
    let trig = sim.signal_init("trig", 1, 0);
    let out = sim.signal_init("out", 8, 0);
    sim.add_component(
        "delayer",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(trig) {
                ctx.set_after(out, Lv::from_u64(8, 0xAB), 7_500);
            }
        }),
        &[trig],
    );
    sim.settle().unwrap();
    sim.poke_u64(trig, 1);
    sim.run_until(7_499).unwrap();
    assert_eq!(sim.peek_u64(out), Some(0));
    sim.run_until(7_500).unwrap();
    assert_eq!(sim.peek_u64(out), Some(0xAB));
}

/// `finish` stops the run loop like `$finish`.
#[test]
fn finish_request_halts_simulation() {
    let (mut sim, clk) = clocked_system();
    let mut count = 0u32;
    sim.add_component(
        "stopper",
        CompKind::Vip,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) {
                count += 1;
                if count == 3 {
                    ctx.finish();
                }
            }
        }),
        &[clk],
    );
    sim.run_until(1_000 * PERIOD).unwrap();
    assert!(sim.finished());
    // Third posedge is at 25 ns.
    assert_eq!(sim.now(), PERIOD / 2 + 2 * PERIOD);
}

/// Messages carry time, component attribution and severity; errors are
/// visible via `has_errors`.
#[test]
fn diagnostics_are_recorded_and_classified() {
    let (mut sim, clk) = clocked_system();
    sim.add_component(
        "checker",
        CompKind::Vip,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) && ctx.now() > 20_000 {
                ctx.error("value out of range");
                ctx.finish();
            }
        }),
        &[clk],
    );
    sim.run_until(100 * PERIOD).unwrap();
    assert!(sim.has_errors());
    let msgs = sim.take_messages();
    assert_eq!(msgs.len(), 1);
    assert_eq!(msgs[0].severity, Severity::Error);
    assert_eq!(msgs[0].component, "checker");
    assert_eq!(msgs[0].time_ps, 25_000);
    assert!(!sim.has_errors(), "take_messages drains the log");
}

/// The VCD trace contains a header, our signals and timestamped changes.
#[test]
fn vcd_trace_is_well_formed() {
    let dir = std::env::temp_dir().join("rtlsim_vcd_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.vcd");
    let (mut sim, clk) = clocked_system();
    let data = sim.signal_init("data", 4, 0);
    sim.add_component(
        "drv",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) {
                let v = ctx.get(data) + Lv::from_u64(4, 3);
                ctx.set(data, v);
            }
        }),
        &[clk],
    );
    sim.trace_vcd(&path).unwrap();
    sim.run_until(5 * PERIOD).unwrap();
    sim.flush_vcd().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("$timescale 1ps $end"));
    assert!(text.contains("$var wire 1"));
    assert!(text.contains("$var wire 4"));
    assert!(text.contains("$enddefinitions $end"));
    assert!(text.contains("#5000"));
    assert!(text.lines().any(|l| l.starts_with("b0011 ")));
}

/// Profiler attributes time by component kind.
#[test]
fn profiler_attributes_time_by_kind() {
    let (mut sim, clk) = clocked_system();
    let sink = sim.signal_init("sink", 32, 0);
    // A deliberately heavy user component and a trivial artifact.
    sim.add_component(
        "heavy",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) {
                let mut acc = ctx.get_u64(sink).unwrap_or(0);
                for i in 0..5_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                ctx.set_u64(sink, acc & 0xFFFF_FFFF);
            }
        }),
        &[clk],
    );
    sim.add_component(
        "tiny_artifact",
        CompKind::Artifact,
        Box::new(move |_ctx: &mut Ctx<'_>| {}),
        &[clk],
    );
    // Profiling is opt-in (off by default to keep the hot path free of
    // clock reads); the profiler samples 1 in 16 evals, so run long
    // enough for the law of large numbers to take over.
    sim.set_profiling(true);
    sim.run_until(2_000 * PERIOD).unwrap();
    let user = sim.profiler().fraction_of_kind(CompKind::UserStatic);
    let artifact = sim.profiler().fraction_of_kind(CompKind::Artifact);
    assert!(
        user > artifact,
        "heavy user logic must dominate: {user} vs {artifact}"
    );
    assert!(user > 0.5, "user fraction {user}");
    let names = sim.eval_counts();
    let rows = sim.profiler().report(&names);
    assert_eq!(rows[0].name, "heavy");
}

/// Signal toggle counts give an activity measure per hierarchy prefix.
#[test]
fn toggle_counts_by_prefix() {
    let (mut sim, clk) = clocked_system();
    let busy = sim.signal_init("cie.busy_bit", 1, 0);
    let quiet = sim.signal_init("me.quiet_bit", 1, 0);
    sim.add_component(
        "toggler",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) {
                let v = !ctx.get(busy);
                ctx.set(busy, v);
            }
        }),
        &[clk],
    );
    sim.run_until(50 * PERIOD).unwrap();
    assert!(sim.toggle_count_prefix("cie.") >= 49);
    assert_eq!(sim.toggle_count_prefix("me."), 0);
    let _ = quiet;
}

/// An uninitialised signal reads as all-X until first driven, as in a
/// 4-state HDL simulator.
#[test]
fn signals_initialise_to_x() {
    let mut sim = Simulator::new();
    let s = sim.signal("floating", 8);
    assert!(sim.peek(s).eq_case(&Lv::xes(8)));
    assert_eq!(sim.peek(s).get(3), Logic::X);
    sim.poke_u64(s, 5);
    sim.settle().unwrap();
    assert_eq!(sim.peek_u64(s), Some(5));
}

/// Kernel statistics reflect activity.
#[test]
fn stats_track_activity() {
    let (mut sim, clk) = clocked_system();
    let q = sim.signal_init("q", 8, 0);
    sim.add_component(
        "cnt",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) {
                let v = ctx.get(q) + Lv::from_u64(8, 1);
                ctx.set(q, v);
            }
        }),
        &[clk],
    );
    sim.run_until(100 * PERIOD).unwrap();
    let stats = sim.stats();
    assert!(stats.evals > 200, "evals: {}", stats.evals);
    assert!(stats.deltas > 100, "deltas: {}", stats.deltas);
    assert!(stats.toggles > 200, "toggles: {}", stats.toggles);
    assert!(
        stats.time_points >= 200,
        "time points: {}",
        stats.time_points
    );
    assert!(
        stats.events >= stats.time_points,
        "events: {} vs time points: {}",
        stats.events,
        stats.time_points
    );
}
