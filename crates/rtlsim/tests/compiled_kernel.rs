//! Compiled-plane kernel tests: edge filtering, parking, doorbells and
//! dirty-window fallback, each checked for bit-identity against an
//! event-driven reference built the same way.

use rtlsim::{Clock, CompKind, Ctx, DirtyWatch, ExecMode, Lv, ResetGen, Simulator};
use std::cell::Cell;
use std::rc::Rc;

const PERIOD: u64 = 10_000;

/// A counter design with a clocked process, a reset, and a comb decoder.
/// Returns (sim, q, dec) with the kernel in `mode`.
fn counter_design(mode: ExecMode) -> (Simulator, rtlsim::SignalId, rtlsim::SignalId) {
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    let q = sim.signal_init("q", 8, 0);
    let dec = sim.signal_init("dec", 1, 0);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    sim.add_component(
        "rstgen",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 2 * PERIOD)),
        &[],
    );
    let counter = sim.add_component(
        "counter",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.is_high(rst) {
                ctx.set_u64(q, 0);
                return;
            }
            if ctx.rose(clk) {
                let v = ctx.get(q) + Lv::from_u64(8, 1);
                ctx.set(q, v);
            }
        }),
        &[clk, rst],
    );
    let comb = sim.add_component(
        "decoder",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            let high = ctx.get_u64(q).is_some_and(|v| v >= 5);
            ctx.set_bit(dec, high);
        }),
        &[q],
    );
    sim.set_exec_mode(mode);
    sim.declare_clocked(counter, clk);
    sim.declare_comb(comb, &[q], &[dec]);
    sim.watch_dirty(rst, DirtyWatch::TruthyOrUnknown);
    (sim, q, dec)
}

#[test]
fn compiled_counter_matches_event_driven_bit_for_bit() {
    let (mut ev, evq, evd) = counter_design(ExecMode::EventDriven);
    let (mut co, coq, cod) = counter_design(ExecMode::Compiled);
    for _ in 0..50 {
        ev.run_for(PERIOD).unwrap();
        co.run_for(PERIOD).unwrap();
        assert_eq!(ev.peek(evq), co.peek(coq));
        assert_eq!(ev.peek(evd), co.peek(cod));
        assert_eq!(ev.state_digest(), co.state_digest(), "state diverged");
    }
    assert_eq!(ev.stats().toggles, co.stats().toggles);
    // The whole point: the compiled mode dispatched fewer evals.
    assert!(
        co.stats().evals < ev.stats().evals,
        "compiled mode should skip wrong-edge activations: {} vs {}",
        co.stats().evals,
        ev.stats().evals
    );
    let cs = co.compiled_stats().expect("plan was built");
    assert!(cs.skipped_edge > 0);
    assert_eq!(cs.seq_rank, 1);
    assert_eq!(cs.comb_comps, 1);
    assert_eq!(cs.comb_levels, 1);
    assert_eq!(cs.comb_cyclic, 0);
    // Reset opens a dirty window that closes when rst deasserts.
    assert_eq!(cs.fallback_entries, 1);
    assert_eq!(cs.fallback_exits, 1);
    assert_eq!(co.fallback_windows().len(), 1);
    assert!(co.fallback_windows()[0].1 < u64::MAX);
}

/// An idle FSM that parks until its `go` input changes, plus a doorbell
/// rung from the testbench side.
#[test]
fn parked_component_wakes_on_signal_and_doorbell() {
    let evals = Rc::new(Cell::new(0u64));
    let bell_flag = Rc::new(Cell::new(false));
    let build = |mode: ExecMode, evals: Rc<Cell<u64>>, flag: Rc<Cell<bool>>| {
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        let go = sim.signal_init("go", 1, 0);
        let out = sim.signal_init("out", 8, 0);
        sim.add_component(
            "clkgen",
            CompKind::Vip,
            Box::new(Clock::new(clk, PERIOD)),
            &[],
        );
        sim.set_exec_mode(mode);
        let bell = sim.add_doorbell(flag.clone());
        let fsm = sim.add_component(
            "fsm",
            CompKind::UserStatic,
            Box::new(move |ctx: &mut Ctx<'_>| {
                evals.set(evals.get() + 1);
                if ctx.rose(clk) && ctx.is_high(go) {
                    let v = ctx.get(out) + Lv::from_u64(8, 1);
                    ctx.set(out, v);
                }
                if !ctx.is_high(go) {
                    // Quiescent until go changes or the doorbell rings.
                    ctx.park_until(&[go], &[bell]);
                }
            }),
            &[clk],
        );
        sim.declare_clocked(fsm, clk);
        (sim, go, out)
    };

    let (mut sim, go, out) = build(ExecMode::Compiled, evals.clone(), bell_flag.clone());
    sim.run_for(20 * PERIOD).unwrap();
    let idle_evals = evals.get();
    assert!(
        idle_evals < 6,
        "parked FSM kept evaluating: {idle_evals} evals over 20 idle cycles"
    );
    // Signal wake: drive go high; the FSM must resume counting.
    sim.poke_u64(go, 1);
    sim.run_for(5 * PERIOD).unwrap();
    assert_eq!(
        sim.peek_u64(out),
        Some(5),
        "missed posedges after signal wake"
    );
    sim.poke_u64(go, 0);
    sim.run_for(5 * PERIOD).unwrap();
    let parked_again = evals.get();
    sim.run_for(10 * PERIOD).unwrap();
    assert!(evals.get() <= parked_again + 1, "FSM failed to re-park");
    // Doorbell wake: ring the bell; the FSM gets dispatched again (one
    // eval is enough to observe the out-of-band state).
    let before = evals.get();
    bell_flag.set(true);
    sim.run_for(3 * PERIOD).unwrap();
    assert!(evals.get() > before, "doorbell did not wake the parked FSM");
    let cs = sim.compiled_stats().unwrap();
    assert!(cs.parks > 0);
    assert!(cs.signal_wakes > 0);
    assert!(cs.doorbell_rings > 0);
    assert!(cs.skipped_parked > 0);
}

/// While a watched dirty signal is truthy, filtering fully suspends:
/// parked components and wrong-edge filtering both stop applying.
#[test]
fn dirty_window_suspends_filtering_and_unparks() {
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let iso = sim.signal_init("isolate", 1, 0);
    let seen = Rc::new(Cell::new(0u64));
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    sim.set_exec_mode(ExecMode::Auto);
    let seen2 = seen.clone();
    let watcher = sim.add_component(
        "watcher",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            seen2.set(seen2.get() + 1);
            // Parks forever: only a dirty window (or iso change) revives it.
            ctx.park_until(&[], &[]);
        }),
        &[clk],
    );
    sim.declare_clocked(watcher, clk);
    sim.watch_dirty(iso, DirtyWatch::TruthyOrUnknown);
    sim.run_for(10 * PERIOD).unwrap();
    let while_parked = seen.get();
    assert!(while_parked <= 2, "park ignored: {while_parked}");
    // Open the window: every posedge AND negedge now dispatches.
    sim.poke_u64(iso, 1);
    sim.run_for(10 * PERIOD).unwrap();
    let in_window = seen.get() - while_parked;
    assert!(
        in_window >= 19,
        "fallback did not dispatch fully: {in_window}"
    );
    // Close it: the component re-parks on its first steady eval.
    sim.poke_u64(iso, 0);
    sim.run_for(10 * PERIOD).unwrap();
    let after = seen.get();
    sim.run_for(10 * PERIOD).unwrap();
    assert!(
        seen.get() <= after + 1,
        "did not re-park after window close"
    );
    let cs = sim.compiled_stats().unwrap();
    assert_eq!(cs.fallback_entries, 1);
    assert_eq!(cs.fallback_exits, 1);
    assert!(cs.steady_points > 0 && cs.fallback_points > 0);
}

/// Event-driven mode must be byte-identical to a kernel with no compiled
/// declarations at all — the declarations are inert there.
#[test]
fn declarations_are_inert_in_event_driven_mode() {
    let (mut plain, pq, _) = counter_design(ExecMode::EventDriven);
    let mut bare = Simulator::new();
    {
        let clk = bare.signal("clk", 1);
        let rst = bare.signal("rst", 1);
        let q = bare.signal_init("q", 8, 0);
        let dec = bare.signal_init("dec", 1, 0);
        bare.add_component(
            "clkgen",
            CompKind::Vip,
            Box::new(Clock::new(clk, PERIOD)),
            &[],
        );
        bare.add_component(
            "rstgen",
            CompKind::Vip,
            Box::new(ResetGen::new(rst, 2 * PERIOD)),
            &[],
        );
        bare.add_component(
            "counter",
            CompKind::UserStatic,
            Box::new(move |ctx: &mut Ctx<'_>| {
                if ctx.is_high(rst) {
                    ctx.set_u64(q, 0);
                    return;
                }
                if ctx.rose(clk) {
                    let v = ctx.get(q) + Lv::from_u64(8, 1);
                    ctx.set(q, v);
                }
            }),
            &[clk, rst],
        );
        bare.add_component(
            "decoder",
            CompKind::UserStatic,
            Box::new(move |ctx: &mut Ctx<'_>| {
                let high = ctx.get_u64(q).is_some_and(|v| v >= 5);
                ctx.set_bit(dec, high);
            }),
            &[q],
        );
    }
    plain.run_for(30 * PERIOD).unwrap();
    bare.run_for(30 * PERIOD).unwrap();
    assert_eq!(plain.state_digest(), bare.state_digest());
    assert_eq!(plain.stats().evals, bare.stats().evals);
    assert_eq!(plain.stats().deltas, bare.stats().deltas);
    assert_eq!(plain.peek_u64(pq), Some(28));
}
