//! Determinism guarantees of the two-level scheduler.
//!
//! The timing-wheel rewrite must preserve the old single-heap kernel's
//! ordering contract bit-for-bit: events at the same timestamp apply in
//! the order they were scheduled (FIFO by global sequence number), even
//! when some of them migrate from the far-horizon heap into the wheel,
//! and the delta-limit oscillation detector still fires at
//! [`DELTA_LIMIT`]. Table/VCD byte-identity across the rewrite rests on
//! these properties.

use rtlsim::{CompKind, Ctx, KernelError, Lv, Simulator, DELTA_LIMIT};
use std::cell::RefCell;
use std::rc::Rc;

/// Register components that log their id when woken; wake them all at
/// one timestamp in a scrambled registration order and check the batch
/// evaluates in scheduling order.
#[test]
fn same_timestamp_wakes_apply_in_scheduling_order() {
    let mut sim = Simulator::new();
    let log: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
    let trig = sim.signal_init("trig", 1, 0);
    let n = 16usize;
    for i in 0..n {
        let log = log.clone();
        let mut armed = false;
        sim.add_component(
            format!("w{i}"),
            CompKind::Vip,
            Box::new(move |ctx: &mut Ctx<'_>| {
                if !armed {
                    armed = true;
                    ctx.wake_after(50_000);
                } else if ctx.now() == 50_000 {
                    log.borrow_mut().push(i);
                }
            }),
            &[],
        );
    }
    let _ = trig;
    sim.run_until(60_000).unwrap();
    let got = log.borrow().clone();
    // All initial evals run in registration order, so the wakes are
    // scheduled 0..n and must be delivered 0..n.
    assert_eq!(got, (0..n).collect::<Vec<_>>());
}

/// Same-timestamp drives to one signal: the last scheduled write wins,
/// exactly as with the old heap kernel.
#[test]
fn same_timestamp_drives_apply_last_writer_wins() {
    let mut sim = Simulator::new();
    let s = sim.signal_init("s", 8, 0);
    let changes: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let changes = changes.clone();
        sim.add_component(
            "watch",
            CompKind::Vip,
            Box::new(move |ctx: &mut Ctx<'_>| {
                if ctx.changed(s) {
                    if let Some(v) = ctx.get_u64(s) {
                        changes.borrow_mut().push(v);
                    }
                }
            }),
            &[s],
        );
    }
    // Three pokes at the same instant: 7, then 9, then 13.
    sim.poke_u64(s, 7);
    sim.poke_u64(s, 9);
    sim.poke_u64(s, 13);
    sim.settle().unwrap();
    assert_eq!(sim.peek_u64(s), Some(13), "last scheduled write wins");
    // Each drive applied in order within the same delta batch, so the
    // watcher saw exactly one change (to the final value).
    assert_eq!(changes.borrow().clone(), vec![13]);
}

/// Far-horizon events (scheduled beyond the wheel window, through the
/// heap) and near events scheduled later directly into the wheel land
/// in one batch at the same timestamp — and still apply in global
/// scheduling order.
#[test]
fn heap_migration_preserves_same_timestamp_fifo() {
    let mut sim = Simulator::new();
    let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
    // The wheel spans ~1 µs; 10 µs is safely beyond it, so this wake
    // enters the far heap first.
    let t_meet = 10_000_000u64;
    {
        let log = log.clone();
        let mut armed = false;
        sim.add_component(
            "far_first",
            CompKind::Vip,
            Box::new(move |ctx: &mut Ctx<'_>| {
                if !armed {
                    armed = true;
                    ctx.wake_after(t_meet);
                } else {
                    log.borrow_mut().push("far_first");
                }
            }),
            &[],
        );
    }
    {
        // This component re-arms a short wake chain and schedules its
        // final wake for the same instant from close range — the event
        // goes straight into the wheel with a *later* sequence number.
        let log = log.clone();
        let mut stage = 0u32;
        sim.add_component(
            "near_second",
            CompKind::Vip,
            Box::new(move |ctx: &mut Ctx<'_>| {
                stage += 1;
                match stage {
                    1 => ctx.wake_after(t_meet - 500_000),
                    2 => ctx.wake_after(500_000),
                    _ => log.borrow_mut().push("near_second"),
                }
            }),
            &[],
        );
    }
    sim.run_until(t_meet + 1_000).unwrap();
    assert_eq!(
        log.borrow().clone(),
        vec!["far_first", "near_second"],
        "heap-migrated event must keep its earlier sequence number"
    );
}

/// A self-retriggering chain that stops just under the limit settles
/// cleanly; an unbounded oscillation trips `DeltaOverflow` at the
/// offending time point.
#[test]
fn delta_limit_fires_exactly_at_the_limit() {
    // Under the limit: a counter that stops after DELTA_LIMIT - 10
    // self-triggered updates.
    let mut sim = Simulator::new();
    let c = sim.signal_init("c", 32, 0);
    let stop = (DELTA_LIMIT - 10) as u64;
    sim.add_component(
        "chain",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            let v = ctx.get_u64(c).unwrap();
            if v < stop {
                ctx.set_u64(c, v + 1);
            }
        }),
        &[c],
    );
    sim.settle().expect("sub-limit chain must settle");
    assert_eq!(sim.peek_u64(c), Some(stop));

    // Over the limit: never stops.
    let mut sim = Simulator::new();
    let c = sim.signal_init("c", 32, 0);
    sim.add_component(
        "osc",
        CompKind::UserStatic,
        Box::new(move |ctx: &mut Ctx<'_>| {
            let v = ctx.get(c);
            ctx.set(c, !v);
        }),
        &[c],
    );
    let err = sim.settle().unwrap_err();
    assert_eq!(err, KernelError::DeltaOverflow { time_ps: 0 });
    // The kernel allowed exactly DELTA_LIMIT deltas before giving up.
    assert_eq!(sim.stats().deltas, DELTA_LIMIT as u64 + 1);
}

/// Two identical seeded runs produce identical statistics, messages and
/// final state — the scheduler has no hidden nondeterminism (hash
/// ordering, pointer identity, wall clock).
#[test]
fn identical_runs_are_bit_identical() {
    fn build_and_run() -> (u64, u64, u64, u64, Vec<String>, Option<u64>) {
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        sim.add_component(
            "clkgen",
            CompKind::Vip,
            Box::new(rtlsim::Clock::new(clk, 10_000)),
            &[],
        );
        let q = sim.signal_init("q", 16, 0);
        let mut lcg = 0xDEADBEEFu64;
        sim.add_component(
            "noise",
            CompKind::UserStatic,
            Box::new(move |ctx: &mut Ctx<'_>| {
                if ctx.rose(clk) {
                    lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let v = (lcg >> 33) & 0xFFFF;
                    ctx.set(q, Lv::from_u64(16, v));
                    if v & 0xFF == 0 {
                        ctx.warn(format!("rare value {v}"));
                    }
                }
            }),
            &[clk],
        );
        sim.run_until(3_000_000).unwrap();
        let st = sim.stats();
        let msgs = sim
            .messages()
            .iter()
            .map(|m| format!("{m}"))
            .collect::<Vec<_>>();
        (
            st.evals,
            st.deltas,
            st.events,
            st.toggles,
            msgs,
            sim.peek_u64(q),
        )
    }
    let a = build_and_run();
    let b = build_and_run();
    assert_eq!(a, b);
}
