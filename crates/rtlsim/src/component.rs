//! The component model: user logic plugs into the kernel by implementing
//! [`Component`] and interacting with signals through an evaluation
//! context [`Ctx`].

use crate::compiled::DoorbellId;
use crate::lv::Lv;
use crate::sim::{SimCore, SimMessage};
use crate::trace::{TraceCat, TraceKind};
use crate::{CompId, Severity, SignalId};

/// Classification of a component, used by the kernel profiler to attribute
/// simulation time the way the paper's §V ModelSim profile does
/// (user design vs. simulation-only artifacts vs. verification IP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompKind {
    /// Synthesizable user design in the static region.
    UserStatic,
    /// Synthesizable user design inside a reconfigurable region.
    UserReconf,
    /// Simulation-only artifact (engine-wrapper mux, extended portal,
    /// error injector, ICAP artifact).
    Artifact,
    /// Verification IP (video VIPs, ISS, checkers, clock/reset generators).
    Vip,
}

/// A simulation component (one "always block"/module instance worth of
/// behaviour). The kernel calls [`Component::eval`] whenever a signal in
/// the component's sensitivity list changes, at `t=0` for initialisation,
/// and on self-scheduled wakeups.
pub trait Component {
    /// React to the current signal state. Reads see the *current* values;
    /// writes issued through [`Ctx::set`] take effect at the end of the
    /// delta cycle (non-blocking-assignment semantics), so all components
    /// evaluated in the same delta observe a consistent pre-update state.
    fn eval(&mut self, ctx: &mut Ctx<'_>);
}

/// Blanket impl so simple processes can be closures.
impl<F: FnMut(&mut Ctx<'_>)> Component for F {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        self(ctx)
    }
}

/// Evaluation context handed to [`Component::eval`].
///
/// All signal access goes through the context, which enforces the kernel's
/// two-phase read/write discipline and records edge information for the
/// current delta.
pub struct Ctx<'a> {
    pub(crate) core: &'a mut SimCore,
    pub(crate) me: CompId,
}

impl Ctx<'_> {
    /// Current simulation time in picoseconds.
    #[inline]
    pub fn now(&self) -> u64 {
        self.core.now
    }

    /// The id of the component being evaluated.
    #[inline]
    pub fn me(&self) -> CompId {
        self.me
    }

    /// Read a signal's current value.
    #[inline]
    pub fn get(&self, s: SignalId) -> Lv {
        self.core.signals[s.0 as usize].cur
    }

    /// Read a signal as `u64`, `None` if any bit is `X`/`Z`.
    #[inline]
    pub fn get_u64(&self, s: SignalId) -> Option<u64> {
        self.get(s).to_u64()
    }

    /// True if the signal currently has at least one driven-1 bit.
    #[inline]
    pub fn is_high(&self, s: SignalId) -> bool {
        self.get(s).truthy()
    }

    /// True if the signal is all known zeros.
    #[inline]
    pub fn is_low(&self, s: SignalId) -> bool {
        let v = self.get(s);
        v.is_known() && v.val_plane() == 0
    }

    /// Schedule a non-blocking write: the value becomes visible at the end
    /// of the current delta cycle. Width is coerced to the signal width.
    #[inline]
    pub fn set(&mut self, s: SignalId, v: Lv) {
        let w = self.core.signals[s.0 as usize].width;
        self.core.pending.push((s, v.resize(w)));
    }

    /// Non-blocking write of a known value.
    #[inline]
    pub fn set_u64(&mut self, s: SignalId, v: u64) {
        let w = self.core.signals[s.0 as usize].width;
        self.core.pending.push((s, Lv::from_u64(w, v)));
    }

    /// Non-blocking write of a single-bit signal.
    #[inline]
    pub fn set_bit(&mut self, s: SignalId, b: bool) {
        self.core.pending.push((s, Lv::bit(b)));
    }

    /// Schedule a write `delay_ps` in the future (transport delay).
    #[inline]
    pub fn set_after(&mut self, s: SignalId, v: Lv, delay_ps: u64) {
        let w = self.core.signals[s.0 as usize].width;
        self.core
            .schedule_drive(self.core.now + delay_ps, s, v.resize(w));
    }

    /// Request re-evaluation of this component `delay_ps` from now,
    /// independent of signal activity.
    #[inline]
    pub fn wake_after(&mut self, delay_ps: u64) {
        let me = self.me;
        self.core.schedule_wake(self.core.now + delay_ps, me);
    }

    /// Did `s` change to a driven 1 in the delta that triggered this eval?
    #[inline]
    pub fn rose(&self, s: SignalId) -> bool {
        let sig = &self.core.signals[s.0 as usize];
        sig.last_change == self.core.step && !sig.prev.truthy() && sig.cur.truthy()
    }

    /// Did `s` change to known 0 in the delta that triggered this eval?
    #[inline]
    pub fn fell(&self, s: SignalId) -> bool {
        let sig = &self.core.signals[s.0 as usize];
        sig.last_change == self.core.step && sig.prev.truthy() && !sig.cur.truthy()
    }

    /// Did `s` change value in the delta that triggered this eval?
    #[inline]
    pub fn changed(&self, s: SignalId) -> bool {
        self.core.signals[s.0 as usize].last_change == self.core.step
    }

    /// Record a diagnostic message attributed to this component. The
    /// component name is an interned handle, so this never copies it.
    pub fn report(&mut self, severity: Severity, text: impl Into<String>) {
        let msg = SimMessage {
            time_ps: self.core.now,
            severity,
            component: self.core.comp_name(self.me).clone(),
            text: text.into(),
        };
        self.core.messages.push(msg);
    }

    /// Shorthand for [`Severity::Error`] reports; errors make
    /// `Simulator::has_errors` true, which the verification harness uses
    /// as its "bug detected" signal.
    pub fn error(&mut self, text: impl Into<String>) {
        self.report(Severity::Error, text);
    }

    /// Shorthand for [`Severity::Warning`] reports.
    pub fn warn(&mut self, text: impl Into<String>) {
        self.report(Severity::Warning, text);
    }

    /// Stop the simulation at the end of the current delta (like
    /// `$finish`). Pending writes still apply.
    pub fn finish(&mut self) {
        self.core.finish_requested = true;
    }

    /// Declare this component quiescent: in compiled execution modes it
    /// is skipped at dispatch until one of `signals` changes value, one
    /// of `doorbells` rings, a self-scheduled wakeup fires, or a
    /// dirty-window fallback begins. No-op in event-driven mode.
    ///
    /// **Contract**: until one of those wake conditions occurs, every
    /// eval of this component must be an observable no-op — no signal
    /// value changes, no messages, no trace emissions, no event
    /// scheduling, no externally visible shared-state mutation. The wake
    /// set is latched from the first call; list every signal the parked
    /// eval reads, and a doorbell for every out-of-band state source
    /// (register files, request queues) it polls.
    #[inline]
    pub fn park_until(&mut self, signals: &[SignalId], doorbells: &[DoorbellId]) {
        let me = self.me;
        self.core.park_until(me, signals, doorbells);
    }

    // --- Structured event tracing (see `crate::trace`). Every helper is
    // a single inlined branch while tracing is off; emission is a pure
    // observation and never changes scheduling.

    /// True if the structured-event sink is on. Components only need this
    /// when preparing an emission is itself non-trivial.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.core.trace.enabled
    }

    /// Open a span: `cat`/`name`/`track` identify it; the matching
    /// [`Ctx::trace_end`] closes it. `track` is the per-category lane
    /// (the reconfigurable-region id for region-scoped spans).
    #[inline]
    pub fn trace_begin(&mut self, cat: TraceCat, name: &'static str, track: u32, arg: u64) {
        if self.core.trace.enabled {
            let now = self.core.now;
            self.core
                .trace
                .push(now, TraceKind::Begin, cat, name, track, arg);
        }
    }

    /// Close the innermost span with this `cat`/`name`/`track`.
    #[inline]
    pub fn trace_end(&mut self, cat: TraceCat, name: &'static str, track: u32, arg: u64) {
        if self.core.trace.enabled {
            let now = self.core.now;
            self.core
                .trace
                .push(now, TraceKind::End, cat, name, track, arg);
        }
    }

    /// Record a zero-duration point event.
    #[inline]
    pub fn trace_instant(&mut self, cat: TraceCat, name: &'static str, track: u32, arg: u64) {
        if self.core.trace.enabled {
            let now = self.core.now;
            self.core
                .trace
                .push(now, TraceKind::Instant, cat, name, track, arg);
        }
    }

    /// Record a counter sample (`value` becomes the track's y-value).
    #[inline]
    pub fn trace_counter(&mut self, cat: TraceCat, name: &'static str, track: u32, value: u64) {
        if self.core.trace.enabled {
            let now = self.core.now;
            self.core
                .trace
                .push(now, TraceKind::Counter, cat, name, track, value);
        }
    }
}
