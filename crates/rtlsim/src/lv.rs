//! Packed four-value logic vectors of up to 64 bits.
//!
//! [`Lv`] is the value type carried by every kernel signal. It uses the
//! classic two-plane Verilog encoding: for each bit, plane `val` holds the
//! data bit and plane `xz` marks the bit as unknown. `(xz=0, val=0)` is `0`,
//! `(xz=0, val=1)` is `1`, `(xz=1, val=0)` is `X` and `(xz=1, val=1)` is
//! `Z`. The type is `Copy` and allocation-free so signal updates stay cheap
//! in the simulation hot loop.
//!
//! Semantics follow the Verilog LRM: bitwise operators propagate unknowns
//! per-bit with `0`/`1` dominance, while arithmetic and ordered comparisons
//! poison the entire result if any operand bit is unknown.

use crate::logic::Logic;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Not, Shl, Shr, Sub};

/// A four-value logic vector, 1 to 64 bits wide.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lv {
    width: u8,
    val: u64,
    xz: u64,
}

#[inline]
fn width_mask(width: u8) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl Lv {
    /// Maximum supported width in bits.
    pub const MAX_WIDTH: u8 = 64;

    /// Construct from raw planes; bits above `width` are cleared.
    ///
    /// Panics if `width` is 0 or exceeds [`Lv::MAX_WIDTH`].
    #[inline]
    pub fn from_planes(width: u8, val: u64, xz: u64) -> Lv {
        assert!(
            (1..=Self::MAX_WIDTH).contains(&width),
            "Lv width must be 1..=64, got {width}"
        );
        let m = width_mask(width);
        Lv {
            width,
            val: val & m,
            xz: xz & m,
        }
    }

    /// An all-zero vector of the given width.
    #[inline]
    pub fn zeros(width: u8) -> Lv {
        Lv::from_planes(width, 0, 0)
    }

    /// An all-one vector of the given width.
    #[inline]
    pub fn ones(width: u8) -> Lv {
        Lv::from_planes(width, u64::MAX, 0)
    }

    /// An all-`X` vector of the given width — the value the ReSim error
    /// injector drives onto outputs of a region undergoing reconfiguration.
    #[inline]
    pub fn xes(width: u8) -> Lv {
        Lv::from_planes(width, 0, u64::MAX)
    }

    /// An all-`Z` (undriven) vector of the given width.
    #[inline]
    pub fn zs(width: u8) -> Lv {
        Lv::from_planes(width, u64::MAX, u64::MAX)
    }

    /// A fully known vector holding `value` (truncated to `width` bits).
    #[inline]
    pub fn from_u64(width: u8, value: u64) -> Lv {
        Lv::from_planes(width, value, 0)
    }

    /// A 1-bit vector from a single [`Logic`] value.
    #[inline]
    pub fn from_logic(l: Logic) -> Lv {
        let (val, xz) = match l {
            Logic::Zero => (0, 0),
            Logic::One => (1, 0),
            Logic::X => (0, 1),
            Logic::Z => (1, 1),
        };
        Lv { width: 1, val, xz }
    }

    /// A 1-bit vector from a `bool`.
    #[inline]
    pub fn bit(b: bool) -> Lv {
        Lv::from_logic(Logic::from_bool(b))
    }

    /// Parse from a bit-character string, MSB first, e.g. `"10xz"`.
    /// Underscores are ignored. Returns `None` on invalid characters,
    /// empty input, or overlong input.
    pub fn parse_bits(s: &str) -> Option<Lv> {
        let mut val = 0u64;
        let mut xz = 0u64;
        let mut width = 0u32;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let l = Logic::from_char(c)?;
            if width == 64 {
                return None;
            }
            val <<= 1;
            xz <<= 1;
            match l {
                Logic::Zero => {}
                Logic::One => val |= 1,
                Logic::X => xz |= 1,
                Logic::Z => {
                    val |= 1;
                    xz |= 1;
                }
            }
            width += 1;
        }
        if width == 0 {
            return None;
        }
        Some(Lv::from_planes(width as u8, val, xz))
    }

    /// Width in bits.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Raw value plane.
    #[inline]
    pub fn val_plane(&self) -> u64 {
        self.val
    }

    /// Raw unknown plane (`1` bits are `X` or `Z`).
    #[inline]
    pub fn xz_plane(&self) -> u64 {
        self.xz
    }

    /// True if every bit is `0` or `1`.
    #[inline]
    pub fn is_known(&self) -> bool {
        self.xz == 0
    }

    /// True if any bit is `X` or `Z`.
    #[inline]
    pub fn has_unknown(&self) -> bool {
        self.xz != 0
    }

    /// The numeric value, or `None` if any bit is unknown.
    #[inline]
    pub fn to_u64(&self) -> Option<u64> {
        if self.xz == 0 {
            Some(self.val)
        } else {
            None
        }
    }

    /// The numeric value with unknown bits coerced to `0` (Verilog
    /// `$unsigned` in a 2-state context). Prefer [`Lv::to_u64`] in checkers.
    #[inline]
    pub fn to_u64_lossy(&self) -> u64 {
        self.val & !self.xz
    }

    /// Get bit `i` (LSB = 0). Panics if out of range.
    #[inline]
    pub fn get(&self, i: u8) -> Logic {
        assert!(
            i < self.width,
            "bit {i} out of range for width {}",
            self.width
        );
        let v = (self.val >> i) & 1;
        let u = (self.xz >> i) & 1;
        match (u, v) {
            (0, 0) => Logic::Zero,
            (0, 1) => Logic::One,
            (1, 0) => Logic::X,
            _ => Logic::Z,
        }
    }

    /// Return a copy with bit `i` set to `l`. Panics if out of range.
    #[inline]
    pub fn with_bit(&self, i: u8, l: Logic) -> Lv {
        assert!(
            i < self.width,
            "bit {i} out of range for width {}",
            self.width
        );
        let (v, u) = match l {
            Logic::Zero => (0u64, 0u64),
            Logic::One => (1, 0),
            Logic::X => (0, 1),
            Logic::Z => (1, 1),
        };
        let m = 1u64 << i;
        Lv {
            width: self.width,
            val: (self.val & !m) | (v << i),
            xz: (self.xz & !m) | (u << i),
        }
    }

    /// Extract bits `hi..=lo` as a new vector. Panics on bad range.
    #[inline]
    pub fn slice(&self, hi: u8, lo: u8) -> Lv {
        assert!(
            hi >= lo && hi < self.width,
            "bad slice [{hi}:{lo}] of width {}",
            self.width
        );
        let w = hi - lo + 1;
        Lv::from_planes(w, self.val >> lo, self.xz >> lo)
    }

    /// Concatenate `{self, low}` (self becomes the high bits).
    /// Panics if the combined width exceeds 64.
    #[inline]
    pub fn concat(&self, low: Lv) -> Lv {
        let w = self.width as u16 + low.width as u16;
        assert!(w <= 64, "concat width {w} exceeds 64");
        Lv::from_planes(
            w as u8,
            (self.val << low.width) | low.val,
            (self.xz << low.width) | low.xz,
        )
    }

    /// Zero-extend or truncate to a new width.
    #[inline]
    pub fn resize(&self, width: u8) -> Lv {
        Lv::from_planes(width, self.val, self.xz)
    }

    /// Case equality (`===`): exact match including `X`/`Z` positions.
    #[inline]
    pub fn eq_case(&self, other: &Lv) -> bool {
        self.width == other.width && self.val == other.val && self.xz == other.xz
    }

    /// Logical equality (`==`): `X` if either operand has unknown bits,
    /// otherwise the boolean comparison. Widths are zero-extended.
    #[inline]
    pub fn eq_logic(&self, other: &Lv) -> Logic {
        if self.has_unknown() || other.has_unknown() {
            Logic::X
        } else {
            Logic::from_bool(self.val == other.val)
        }
    }

    /// OR-reduction of all bits.
    pub fn reduce_or(&self) -> Logic {
        if self.val & !self.xz != 0 {
            Logic::One // at least one driven 1 dominates
        } else if self.xz != 0 {
            Logic::X
        } else {
            Logic::Zero
        }
    }

    /// AND-reduction of all bits.
    pub fn reduce_and(&self) -> Logic {
        let m = width_mask(self.width);
        if !self.val & !self.xz & m != 0 {
            Logic::Zero // at least one driven 0 dominates
        } else if self.xz != 0 {
            Logic::X
        } else {
            Logic::One
        }
    }

    /// XOR-reduction of all bits (parity); `X` if any bit unknown.
    pub fn reduce_xor(&self) -> Logic {
        if self.xz != 0 {
            Logic::X
        } else {
            Logic::from_bool(self.val.count_ones() % 2 == 1)
        }
    }

    /// Truthiness as in `if (expr)`: `One` if any bit is a driven 1.
    #[inline]
    pub fn truthy(&self) -> bool {
        self.reduce_or() == Logic::One
    }

    /// Per-net resolution of two drivers of equal width (wired bus).
    /// Panics on width mismatch.
    pub fn resolve(&self, other: &Lv) -> Lv {
        assert_eq!(self.width, other.width, "resolve width mismatch");
        let mut out = *self;
        for i in 0..self.width {
            out = out.with_bit(i, self.get(i).resolve(other.get(i)));
        }
        out
    }

    /// Addition with carry-out discarded; all-`X` if any operand unknown.
    #[inline]
    fn arith(self, rhs: Lv, f: impl FnOnce(u64, u64) -> u64) -> Lv {
        let w = self.width.max(rhs.width);
        if self.has_unknown() || rhs.has_unknown() {
            Lv::xes(w)
        } else {
            Lv::from_u64(w, f(self.val, rhs.val))
        }
    }

    /// Unsigned less-than; `X` if any operand bit is unknown.
    #[inline]
    pub fn lt(&self, other: &Lv) -> Logic {
        match (self.to_u64(), other.to_u64()) {
            (Some(a), Some(b)) => Logic::from_bool(a < b),
            _ => Logic::X,
        }
    }

    /// Count of driven-1 bits (unknown bits excluded).
    #[inline]
    pub fn count_ones(&self) -> u32 {
        (self.val & !self.xz).count_ones()
    }
}

impl BitAnd for Lv {
    type Output = Lv;
    /// Per-bit Verilog AND: `0` dominates unknowns.
    fn bitand(self, rhs: Lv) -> Lv {
        let w = self.width.max(rhs.width);
        let (a, ax) = (self.val, self.xz);
        let (b, bx) = (rhs.val, rhs.xz);
        // A bit is known-0 when (xz=0, val=0).
        let a0 = !a & !ax;
        let b0 = !b & !bx;
        let zero = a0 | b0; // result 0 wherever either operand is known 0
        let one = (a & !ax) & (b & !bx); // both known 1
        let x = !(zero | one);
        Lv::from_planes(w, one, x)
    }
}

impl BitOr for Lv {
    type Output = Lv;
    /// Per-bit Verilog OR: `1` dominates unknowns.
    fn bitor(self, rhs: Lv) -> Lv {
        let w = self.width.max(rhs.width);
        let one = (self.val & !self.xz) | (rhs.val & !rhs.xz);
        let zero = (!self.val & !self.xz) & (!rhs.val & !rhs.xz);
        let x = !(zero | one);
        Lv::from_planes(w, one, x)
    }
}

impl BitXor for Lv {
    type Output = Lv;
    /// Per-bit Verilog XOR: any unknown bit poisons that bit.
    fn bitxor(self, rhs: Lv) -> Lv {
        let w = self.width.max(rhs.width);
        let x = self.xz | rhs.xz;
        Lv::from_planes(w, (self.val ^ rhs.val) & !x, x)
    }
}

impl Not for Lv {
    type Output = Lv;
    /// Per-bit Verilog NOT: `X`/`Z` become `X`.
    fn not(self) -> Lv {
        Lv::from_planes(self.width, !self.val & !self.xz, self.xz)
    }
}

impl Add for Lv {
    type Output = Lv;
    fn add(self, rhs: Lv) -> Lv {
        self.arith(rhs, |a, b| a.wrapping_add(b))
    }
}

impl Sub for Lv {
    type Output = Lv;
    fn sub(self, rhs: Lv) -> Lv {
        self.arith(rhs, |a, b| a.wrapping_sub(b))
    }
}

impl Shl<u8> for Lv {
    type Output = Lv;
    fn shl(self, s: u8) -> Lv {
        if s >= self.width {
            return Lv::zeros(self.width);
        }
        Lv::from_planes(self.width, self.val << s, self.xz << s)
    }
}

impl Shr<u8> for Lv {
    type Output = Lv;
    fn shr(self, s: u8) -> Lv {
        if s >= self.width {
            return Lv::zeros(self.width);
        }
        Lv::from_planes(self.width, self.val >> s, self.xz >> s)
    }
}

impl fmt::Debug for Lv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        for i in (0..self.width).rev() {
            write!(f, "{}", self.get(i).to_char())?;
        }
        Ok(())
    }
}

impl fmt::Display for Lv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.to_u64() {
            write!(f, "{}'h{:x}", self.width, v)
        } else {
            fmt::Debug::fmt(self, f)
        }
    }
}

impl From<Logic> for Lv {
    fn from(l: Logic) -> Lv {
        Lv::from_logic(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_masks_excess_bits() {
        let v = Lv::from_planes(4, 0xFF, 0xF0);
        assert_eq!(v.val_plane(), 0xF);
        assert_eq!(v.xz_plane(), 0x0);
        assert_eq!(v.to_u64(), Some(0xF));
    }

    #[test]
    #[should_panic(expected = "width must be 1..=64")]
    fn zero_width_panics() {
        let _ = Lv::zeros(0);
    }

    #[test]
    fn parse_and_debug_round_trip() {
        let v = Lv::parse_bits("10xz").unwrap();
        assert_eq!(format!("{v:?}"), "4'b10xz");
        assert_eq!(v.get(3), Logic::One);
        assert_eq!(v.get(2), Logic::Zero);
        assert_eq!(v.get(1), Logic::X);
        assert_eq!(v.get(0), Logic::Z);
        assert!(Lv::parse_bits("").is_none());
        assert!(Lv::parse_bits("2").is_none());
        assert_eq!(Lv::parse_bits("1_0").unwrap().to_u64(), Some(2));
    }

    #[test]
    fn display_prefers_hex_when_known() {
        assert_eq!(format!("{}", Lv::from_u64(8, 0xAB)), "8'hab");
        assert_eq!(format!("{}", Lv::xes(2)), "2'bxx");
    }

    #[test]
    fn slice_and_concat() {
        let v = Lv::from_u64(16, 0xBEEF);
        assert_eq!(v.slice(15, 8).to_u64(), Some(0xBE));
        assert_eq!(v.slice(7, 0).to_u64(), Some(0xEF));
        let c = v.slice(15, 8).concat(v.slice(7, 0));
        assert!(c.eq_case(&v));
    }

    #[test]
    #[should_panic(expected = "bad slice")]
    fn bad_slice_panics() {
        Lv::from_u64(8, 0).slice(8, 0);
    }

    #[test]
    fn and_dominance_with_x() {
        let a = Lv::parse_bits("01x").unwrap();
        let x = Lv::xes(3);
        // 0&x=0, 1&x=x, x&x=x
        assert_eq!(format!("{:?}", a & x), "3'b0xx");
    }

    #[test]
    fn or_dominance_with_x() {
        let a = Lv::parse_bits("01x").unwrap();
        let x = Lv::xes(3);
        // 0|x=x, 1|x=1, x|x=x
        assert_eq!(format!("{:?}", a | x), "3'bx1x");
    }

    #[test]
    fn xor_and_not_poison() {
        let a = Lv::parse_bits("01x").unwrap();
        assert_eq!(format!("{:?}", a ^ Lv::ones(3)), "3'b10x");
        assert_eq!(format!("{:?}", !a), "3'b10x");
        // Z inverts to X.
        assert_eq!(format!("{:?}", !Lv::zs(2)), "2'bxx");
    }

    #[test]
    fn arithmetic_poisons_entirely() {
        let a = Lv::from_u64(8, 10);
        let b = Lv::from_u64(8, 20);
        assert_eq!((a + b).to_u64(), Some(30));
        assert_eq!((b - a).to_u64(), Some(10));
        let poisoned = a + Lv::parse_bits("0000000x").unwrap();
        assert!(poisoned.eq_case(&Lv::xes(8)));
    }

    #[test]
    fn add_wraps_at_width() {
        let a = Lv::from_u64(8, 0xFF);
        assert_eq!((a + Lv::from_u64(8, 1)).to_u64(), Some(0));
    }

    #[test]
    fn shifts() {
        let a = Lv::from_u64(8, 0b1001);
        assert_eq!((a << 2).to_u64(), Some(0b100100));
        assert_eq!((a >> 3).to_u64(), Some(1));
        assert_eq!((a << 8).to_u64(), Some(0));
        assert_eq!((a >> 9).to_u64(), Some(0));
    }

    #[test]
    fn reductions() {
        assert_eq!(Lv::from_u64(4, 0).reduce_or(), Logic::Zero);
        assert_eq!(Lv::from_u64(4, 2).reduce_or(), Logic::One);
        assert_eq!(Lv::parse_bits("x0").unwrap().reduce_or(), Logic::X);
        assert_eq!(Lv::parse_bits("x1").unwrap().reduce_or(), Logic::One);

        assert_eq!(Lv::ones(4).reduce_and(), Logic::One);
        assert_eq!(Lv::parse_bits("x0").unwrap().reduce_and(), Logic::Zero);
        assert_eq!(Lv::parse_bits("x1").unwrap().reduce_and(), Logic::X);

        assert_eq!(Lv::from_u64(4, 0b0111).reduce_xor(), Logic::One);
        assert_eq!(Lv::parse_bits("1x").unwrap().reduce_xor(), Logic::X);
    }

    #[test]
    fn equality_flavours() {
        let a = Lv::parse_bits("1x").unwrap();
        let b = Lv::parse_bits("1x").unwrap();
        assert!(a.eq_case(&b));
        assert_eq!(a.eq_logic(&b), Logic::X);
        let c = Lv::from_u64(2, 2);
        let d = Lv::from_u64(2, 2);
        assert_eq!(c.eq_logic(&d), Logic::One);
        assert_eq!(c.eq_logic(&Lv::from_u64(2, 3)), Logic::Zero);
    }

    #[test]
    fn resolution_of_buses() {
        let a = Lv::parse_bits("01zz").unwrap();
        let b = Lv::parse_bits("zz01").unwrap();
        assert_eq!(format!("{:?}", a.resolve(&b)), "4'b0101");
        let conflict = Lv::zeros(1).resolve(&Lv::ones(1));
        assert!(conflict.eq_case(&Lv::xes(1)));
    }

    #[test]
    fn lossy_u64_clears_unknowns() {
        let v = Lv::parse_bits("1x1z").unwrap();
        assert_eq!(v.to_u64(), None);
        assert_eq!(v.to_u64_lossy(), 0b1010);
    }

    #[test]
    fn truthy_requires_driven_one() {
        assert!(Lv::from_u64(4, 8).truthy());
        assert!(!Lv::zeros(4).truthy());
        assert!(!Lv::xes(4).truthy());
        assert!(Lv::parse_bits("1x").unwrap().truthy());
    }

    #[test]
    fn resize_extends_and_truncates() {
        let v = Lv::from_u64(4, 0xF);
        assert_eq!(v.resize(8).to_u64(), Some(0xF));
        assert_eq!(v.resize(2).to_u64(), Some(0x3));
        let x = Lv::xes(4).resize(8);
        assert_eq!(x.xz_plane(), 0xF);
    }
}
