//! # rtlsim — a cycle/delta-accurate RTL simulation kernel
//!
//! This crate is the substitute for the commercial HDL simulator
//! (ModelSim) used by the paper *"RTL Simulation of High Performance
//! Dynamic Reconfiguration: A Video Processing Case Study"*. It provides
//! everything the ReSim methodology needs from its host simulator:
//!
//! * **Four-value logic** ([`Logic`], [`Lv`]) with faithful `X`
//!   propagation — the error-injection mechanism that models a region
//!   undergoing partial reconfiguration drives `X` into the static region
//!   and relies on the kernel to propagate it like a real HDL simulator.
//! * **Event-driven scheduling** with delta cycles and non-blocking update
//!   semantics ([`Simulator`], [`Component`], [`Ctx`]), so registered and
//!   combinational processes compose exactly as Verilog `always` blocks.
//! * **Multiple clock domains** ([`Clock`]) — the case study's
//!   bug.dpr.6b exists only because the configuration clock is slower
//!   than the system clock.
//! * **Waveform tracing** (VCD) and **per-component profiling**
//!   ([`profile::Profiler`]) used to reproduce the paper's §V simulation
//!   overhead measurements.
//!
//! ## Example
//!
//! ```
//! use rtlsim::{Simulator, Clock, CompKind, Ctx, Lv};
//!
//! let mut sim = Simulator::new();
//! let clk = sim.signal("clk", 1);
//! let q = sim.signal_init("q", 8, 0);
//! sim.add_component("clkgen", CompKind::Vip, Box::new(Clock::new(clk, 10_000)), &[]);
//! // An 8-bit counter clocked on the rising edge.
//! sim.add_component(
//!     "counter",
//!     CompKind::UserStatic,
//!     Box::new(move |ctx: &mut Ctx<'_>| {
//!         if ctx.rose(clk) {
//!             let v = ctx.get(q) + Lv::from_u64(8, 1);
//!             ctx.set(q, v);
//!         }
//!     }),
//!     &[clk],
//! );
//! sim.run_until(100_000).unwrap(); // posedges at 5, 15, ..., 95 ns
//! assert_eq!(sim.peek_u64(q), Some(10));
//! ```

pub mod clock;
pub mod compiled;
pub mod component;
pub mod logic;
pub mod lv;
pub mod name;
pub mod profile;
pub mod sim;
pub mod trace;
mod vcd;

pub use clock::{Clock, ResetGen};
pub use compiled::{CompiledStats, DirtyWatch, DoorbellId, ExecMode};
pub use component::{CompKind, Component, Ctx};
pub use logic::Logic;
pub use lv::Lv;
pub use name::{Name, NameId};
pub use sim::{KernelError, SimError, SimMessage, SimStats, Simulator, DELTA_LIMIT};
pub use trace::{coverage_key, log2_bucket, TraceCat, TraceEvent, TraceKind};

/// Handle to a signal in a [`Simulator`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

/// Handle to a registered component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompId(pub(crate) u32);

/// Severity of a [`SimMessage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note.
    Info,
    /// Suspicious but not necessarily wrong.
    Warning,
    /// A checker or assertion failure; makes `Simulator::has_errors` true.
    Error,
}

/// Convenience: picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Convenience: picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Convenience: picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
