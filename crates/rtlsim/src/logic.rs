//! Scalar four-value logic, modelled on the IEEE 1164 / Verilog value set.
//!
//! A [`Logic`] value is one of `0`, `1`, `X` (unknown) or `Z` (high
//! impedance). The kernel uses `X` to model the spurious outputs of a
//! region undergoing partial reconfiguration, exactly as the ReSim error
//! injector does, so faithful X-propagation through gates and buses is a
//! first-class requirement rather than an afterthought.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A single four-value logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Driven low.
    #[default]
    Zero,
    /// Driven high.
    One,
    /// Unknown / conflicting value.
    X,
    /// Undriven (high impedance).
    Z,
}

impl Logic {
    /// All four values, in ascending "strength of knowledge" order.
    pub const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    /// True if the value is `0` or `1` (i.e. two-valued).
    #[inline]
    pub fn is_known(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// True if the value is `X` or `Z`.
    #[inline]
    pub fn is_unknown(self) -> bool {
        !self.is_known()
    }

    /// Convert to `bool`, returning `None` for `X`/`Z`.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            _ => None,
        }
    }

    /// Build from a `bool`.
    #[inline]
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// The character used in waveform/VCD output (`0`, `1`, `x`, `z`).
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }

    /// Parse a logic character (case-insensitive for `x`/`z`).
    pub fn from_char(c: char) -> Option<Logic> {
        match c {
            '0' => Some(Logic::Zero),
            '1' => Some(Logic::One),
            'x' | 'X' => Some(Logic::X),
            'z' | 'Z' => Some(Logic::Z),
            _ => None,
        }
    }

    /// Bus resolution of two drivers on the same net, per the classic
    /// `std_logic` resolution table restricted to the 4-value subset:
    /// `Z` yields to anything, equal drivers agree, and conflicting
    /// strong drivers resolve to `X`.
    #[inline]
    pub fn resolve(self, other: Logic) -> Logic {
        use Logic::*;
        match (self, other) {
            (Z, v) | (v, Z) => v,
            (a, b) if a == b => a,
            _ => X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

/// Verilog `&` semantics: `0` dominates `X`/`Z`.
impl BitAnd for Logic {
    type Output = Logic;
    #[inline]
    fn bitand(self, rhs: Logic) -> Logic {
        use Logic::*;
        match (self, rhs) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => X,
        }
    }
}

/// Verilog `|` semantics: `1` dominates `X`/`Z`.
impl BitOr for Logic {
    type Output = Logic;
    #[inline]
    fn bitor(self, rhs: Logic) -> Logic {
        use Logic::*;
        match (self, rhs) {
            (One, _) | (_, One) => One,
            (Zero, Zero) => Zero,
            _ => X,
        }
    }
}

/// Verilog `^` semantics: any unknown operand poisons the result.
impl BitXor for Logic {
    type Output = Logic;
    #[inline]
    fn bitxor(self, rhs: Logic) -> Logic {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }
}

/// Verilog `~` semantics: `X`/`Z` invert to `X`.
impl Not for Logic {
    type Output = Logic;
    #[inline]
    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn known_and_unknown_partition_the_value_set() {
        assert!(Zero.is_known());
        assert!(One.is_known());
        assert!(X.is_unknown());
        assert!(Z.is_unknown());
        for v in Logic::ALL {
            assert_ne!(v.is_known(), v.is_unknown());
        }
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true).to_bool(), Some(true));
        assert_eq!(Logic::from_bool(false).to_bool(), Some(false));
        assert_eq!(X.to_bool(), None);
        assert_eq!(Z.to_bool(), None);
    }

    #[test]
    fn char_round_trip_for_all_values() {
        for v in Logic::ALL {
            assert_eq!(Logic::from_char(v.to_char()), Some(v));
        }
        assert_eq!(Logic::from_char('q'), None);
        assert_eq!(Logic::from_char('X'), Some(X));
        assert_eq!(Logic::from_char('Z'), Some(Z));
    }

    #[test]
    fn and_truth_table() {
        assert_eq!(Zero & Zero, Zero);
        assert_eq!(Zero & One, Zero);
        assert_eq!(One & One, One);
        // 0 dominates unknowns.
        assert_eq!(Zero & X, Zero);
        assert_eq!(Zero & Z, Zero);
        // 1 & unknown is unknown.
        assert_eq!(One & X, X);
        assert_eq!(One & Z, X);
        assert_eq!(X & Z, X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Zero | Zero, Zero);
        assert_eq!(Zero | One, One);
        assert_eq!(One | One, One);
        // 1 dominates unknowns.
        assert_eq!(One | X, One);
        assert_eq!(One | Z, One);
        // 0 | unknown is unknown.
        assert_eq!(Zero | X, X);
        assert_eq!(Zero | Z, X);
    }

    #[test]
    fn xor_poisons_on_unknown() {
        assert_eq!(Zero ^ One, One);
        assert_eq!(One ^ One, Zero);
        assert_eq!(One ^ X, X);
        assert_eq!(Z ^ Zero, X);
    }

    #[test]
    fn not_truth_table() {
        assert_eq!(!Zero, One);
        assert_eq!(!One, Zero);
        assert_eq!(!X, X);
        assert_eq!(!Z, X);
    }

    #[test]
    fn resolution_is_commutative_and_z_yields() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a.resolve(b), b.resolve(a));
            }
            assert_eq!(Z.resolve(a), a);
            assert_eq!(a.resolve(a), a);
        }
        assert_eq!(Zero.resolve(One), X);
        assert_eq!(One.resolve(X), X);
    }

    #[test]
    fn and_or_are_commutative() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a & b, b & a);
                assert_eq!(a | b, b | a);
                assert_eq!(a ^ b, b ^ a);
            }
        }
    }
}
