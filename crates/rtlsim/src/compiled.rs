//! The compiled-simulation plane: levelized schedule analysis plus the
//! steady-state dispatch filter behind [`ExecMode`].
//!
//! # What "compiled" means here
//!
//! A classical compiled simulator (the berkeley-emulation-engine style)
//! re-emits the netlist as straight-line host code and keeps a *second*
//! copy of architectural state, which it must hand back to the
//! event-driven reference at every boundary. This kernel's components are
//! opaque `eval` bodies observing intra-delta glitch order through the
//! VCD sink and toggle counters, so a schedule that re-orders evaluation
//! would change the waveform byte stream. Instead, the compiled plane
//! keeps the delta loop as the *only* executor and compiles away the
//! dispatches that are provably no-ops:
//!
//! * **Edge filtering** — a component declared clocked via
//!   [`crate::Simulator::declare_clocked`] is never dispatched for the
//!   falling edge of its clock (its eval contract makes those evals
//!   observable no-ops; every other sensitivity, e.g. reset, dispatches
//!   normally).
//! * **Parking** — an idle FSM calls [`crate::Ctx::park_until`] to
//!   declare itself quiescent until one of its watched signals changes or
//!   a [`DoorbellId`] rings; parked components are skipped at dispatch.
//! * **Dirty-window fallback** — while any watched boundary condition
//!   holds (region isolation asserted, a SimB transfer in flight, `X` on
//!   a watched signal), filtering is suspended and every component is
//!   unparked: the kernel degenerates to full event-driven delta
//!   semantics for the duration of the window.
//!
//! Because the compiled plane only ever *removes* no-op dispatches, the
//! state handoff in both directions is trivially clean: there is no
//! second state copy, the event queue and signal arena are shared, and
//! entering/leaving a dirty window is a flag flip plus an unpark sweep.
//!
//! # Levelization
//!
//! [`crate::Simulator::declare_comb`] records a combinational component's
//! read/write sets. At compile time the plane topologically orders the
//! declared combinational netlist (Kahn), yielding the per-cycle
//! schedule shape: one batched sequential rank (all `Clocked`
//! components, dispatched together at their clock edge) followed by at
//! most `comb_levels` cascaded combinational ranks. The levelization is
//! used to validate acyclicity and to bound the delta-cascade depth; the
//! *execution order* within a delta remains event order, which is what
//! pins waveforms bit-identical between modes.

use crate::{CompId, SignalId};
use std::cell::Cell;
use std::rc::Rc;

/// Execution mode of a [`crate::Simulator`], selected before the first
/// run call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Classic event-driven kernel: every sensitivity activation
    /// dispatches. The reference semantics and the default.
    #[default]
    EventDriven,
    /// Compiled steady-state dispatch: edge filtering and parking are
    /// honoured outside dirty windows. Bit-identical observable
    /// behaviour, fewer component evaluations.
    Compiled,
    /// Policy alias: resolves to [`ExecMode::Compiled`] today, and is the
    /// hook for future heuristics (e.g. staying event-driven for
    /// configurations whose fault plans defeat the steady-state
    /// assumption). Prefer this in new code.
    Auto,
}

impl ExecMode {
    /// Does this mode enable the compiled dispatch filter?
    #[inline]
    pub fn is_compiled(self) -> bool {
        !matches!(self, ExecMode::EventDriven)
    }

    /// Stable lowercase name (CLI/JSON spelling).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::EventDriven => "event",
            ExecMode::Compiled => "compiled",
            ExecMode::Auto => "auto",
        }
    }

    /// Parse the CLI/JSON spelling produced by [`ExecMode::as_str`]
    /// (plus the common long aliases).
    pub fn parse(s: &str) -> Option<ExecMode> {
        match s {
            "event" | "event-driven" | "eventdriven" => Some(ExecMode::EventDriven),
            "compiled" => Some(ExecMode::Compiled),
            "auto" => Some(ExecMode::Auto),
            _ => None,
        }
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;
    fn from_str(s: &str) -> Result<ExecMode, String> {
        ExecMode::parse(s).ok_or_else(|| format!("unknown exec mode '{s}' (event|compiled|auto)"))
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Handle to a registered doorbell (see
/// [`crate::Simulator::add_doorbell`]): a shared flag that out-of-band
/// state owners (register files, request queues) raise when they mutate
/// state a parked component polls, so parking stays sound for state that
/// bypasses the signal arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DoorbellId(pub(crate) u32);

/// What makes a watched signal "dirty" (see
/// [`crate::Simulator::watch_dirty`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirtyWatch {
    /// Dirty while the signal has any driven-1 bit (isolation asserted,
    /// transfer in flight).
    Truthy,
    /// Dirty while the signal carries `X`/`Z` bits (corruption escaping a
    /// boundary).
    Unknown,
    /// Dirty in either case (reset, ICAP handshake wires).
    TruthyOrUnknown,
}

/// Statistics of the compiled plane, populated once the plan is built.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompiledStats {
    /// Wall-clock nanoseconds spent building the plan (levelization plus
    /// dense-table construction).
    pub compile_nanos: u64,
    /// Components covered by the plan (dense slot count).
    pub schedule_comps: u64,
    /// Components in the batched sequential rank (declared clocked).
    pub seq_rank: u64,
    /// Declared combinational components.
    pub comb_comps: u64,
    /// Depth of the levelized combinational schedule (0 when no comb
    /// declarations exist).
    pub comb_levels: u64,
    /// Declared combinational components on a cycle (levelization could
    /// not order them; they stay generically dispatched).
    pub comb_cyclic: u64,
    /// Dispatches skipped because the activation was the wrong clock
    /// edge.
    pub skipped_edge: u64,
    /// Dispatches skipped because the component was parked.
    pub skipped_parked: u64,
    /// `park_until` calls honoured.
    pub parks: u64,
    /// Parked components woken by a watched-signal change.
    pub signal_wakes: u64,
    /// Doorbell rings consumed (each may wake several listeners).
    pub doorbell_rings: u64,
    /// Transitions into the dirty-window fallback.
    pub fallback_entries: u64,
    /// Transitions back to filtered steady-state dispatch.
    pub fallback_exits: u64,
    /// Time points executed with filtering active.
    pub steady_points: u64,
    /// Time points executed in fallback (or before the plan was built).
    pub fallback_points: u64,
}

/// Per-signal compiled-plane flags, packed next to the signal's hot
/// state (`SignalState.cflags`).
pub(crate) mod cflag {
    /// Signal is dirty-watched for truthiness.
    pub const WATCH_TRUTHY: u8 = 1 << 0;
    /// Signal is dirty-watched for unknown bits.
    pub const WATCH_UNKNOWN: u8 = 1 << 1;
    /// Signal currently holds its dirty condition.
    pub const DIRTY_NOW: u8 = 1 << 2;
    /// Signal has a (possibly empty) park wake list.
    pub const HAS_WAKERS: u8 = 1 << 3;
    pub const WATCH_ANY: u8 = WATCH_TRUTHY | WATCH_UNKNOWN;
}

pub(crate) const NO_CLOCK: u32 = u32::MAX;

/// Dense per-component / per-signal compiled-plane state, embedded in
/// `SimCore` so both the dispatcher and `Ctx::park_until` reach it.
#[derive(Default)]
pub(crate) struct CompiledCore {
    pub mode: ExecMode,
    /// Hot gate: true iff `mode.is_compiled()`, the plan is built, and no
    /// dirty window is active. Checked once per signal application.
    pub filtering: bool,
    /// Plan built (dense tables sized); set by `compile_plan`.
    pub built: bool,
    /// Per component: declared clock signal id, `NO_CLOCK` if generic.
    pub clock_of: Vec<u32>,
    /// Per component: currently parked.
    pub parked: Vec<bool>,
    /// Per component: wake set already registered (the set is latched
    /// from the first `park_until` call).
    pub wake_registered: Vec<bool>,
    /// Per signal: components to unpark when the signal changes.
    pub wakers: Vec<Vec<CompId>>,
    /// Registered doorbells and their parked listeners.
    pub doorbells: Vec<(Rc<Cell<bool>>, Vec<CompId>)>,
    /// Declared combinational read/write sets (levelization input).
    pub comb_decls: Vec<(CompId, Vec<SignalId>, Vec<SignalId>)>,
    /// Number of signals currently dirty; filtering is suspended while
    /// non-zero.
    pub dirty_count: u32,
    /// Closed and open fallback windows as `(entry_ps, exit_ps)`; an open
    /// window has `exit_ps == u64::MAX`. Kept out of the structured trace
    /// so the TraceBuf stream stays bit-identical between modes.
    pub windows: Vec<(u64, u64)>,
    pub stats: CompiledStats,
}

impl CompiledCore {
    /// Ensure dense tables cover `n_comps` components (components added
    /// after compile get generic, unparked slots — always dispatched).
    pub fn ensure_comps(&mut self, n_comps: usize) {
        if self.clock_of.len() < n_comps {
            self.clock_of.resize(n_comps, NO_CLOCK);
            self.parked.resize(n_comps, false);
            self.wake_registered.resize(n_comps, false);
        }
    }

    /// Ensure the per-signal wake-list table covers `n_signals`.
    pub fn ensure_signals(&mut self, n_signals: usize) {
        if self.wakers.len() < n_signals {
            self.wakers.resize_with(n_signals, Vec::new);
        }
    }

    /// Clear every parked flag (dirty-window entry / full flush).
    pub fn unpark_all(&mut self) {
        for p in &mut self.parked {
            *p = false;
        }
    }

    /// Recompute the hot filtering gate from mode/plan/dirty state.
    #[inline]
    pub fn refresh_gate(&mut self) {
        self.filtering = self.mode.is_compiled() && self.built && self.dirty_count == 0;
    }

    /// Consume raised doorbells, unparking their listeners. Called once
    /// per delta while filtering; cost is one `Cell` read per doorbell.
    #[inline]
    pub fn service_doorbells(&mut self) {
        for (flag, listeners) in &self.doorbells {
            if flag.get() {
                flag.set(false);
                self.stats.doorbell_rings += 1;
                for &c in listeners {
                    self.parked[c.0 as usize] = false;
                }
            }
        }
    }

    /// Levelize the declared combinational netlist: Kahn topological sort
    /// over "writer feeds reader" edges. Returns (levels, cyclic_comps).
    pub fn levelize(&self) -> (u64, u64) {
        let n = self.comb_decls.len();
        if n == 0 {
            return (0, 0);
        }
        // Map each written signal to its writing decl indices.
        let mut writers: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, (_, _, writes)) in self.comb_decls.iter().enumerate() {
            for s in writes {
                writers.entry(s.0).or_default().push(i);
            }
        }
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (i, (_, reads, _)) in self.comb_decls.iter().enumerate() {
            for s in reads {
                if let Some(ws) = writers.get(&s.0) {
                    for &w in ws {
                        if w != i {
                            succ[w].push(i);
                            indeg[i] += 1;
                        }
                    }
                }
            }
        }
        let mut level = vec![0u64; n];
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = queue.len();
        let mut head = 0;
        let mut max_level = if queue.is_empty() { 0 } else { 1 };
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &succ[u] {
                indeg[v] -= 1;
                if level[v] < level[u] + 1 {
                    level[v] = level[u] + 1;
                    max_level = max_level.max(level[v] + 1);
                }
                if indeg[v] == 0 {
                    queue.push(v);
                    seen += 1;
                }
            }
        }
        (max_level, (n - seen) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_round_trips_through_its_name() {
        for m in [ExecMode::EventDriven, ExecMode::Compiled, ExecMode::Auto] {
            assert_eq!(ExecMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(ExecMode::parse("event-driven"), Some(ExecMode::EventDriven));
        assert_eq!(ExecMode::parse("bogus"), None);
        assert_eq!(ExecMode::default(), ExecMode::EventDriven);
    }

    #[test]
    fn levelize_orders_a_chain_and_flags_a_cycle() {
        let mut cc = CompiledCore::default();
        let s = |n: u32| SignalId(n);
        // a: s0 -> s1, b: s1 -> s2, c: s2 -> s3 — a 3-level chain.
        cc.comb_decls.push((CompId(0), vec![s(0)], vec![s(1)]));
        cc.comb_decls.push((CompId(1), vec![s(1)], vec![s(2)]));
        cc.comb_decls.push((CompId(2), vec![s(2)], vec![s(3)]));
        let (levels, cyclic) = cc.levelize();
        assert_eq!(levels, 3);
        assert_eq!(cyclic, 0);
        // d/e form a combinational loop: flagged, not ordered.
        cc.comb_decls.push((CompId(3), vec![s(9)], vec![s(8)]));
        cc.comb_decls.push((CompId(4), vec![s(8)], vec![s(9)]));
        let (_, cyclic) = cc.levelize();
        assert_eq!(cyclic, 2);
    }

    #[test]
    fn empty_netlist_levelizes_to_zero() {
        let cc = CompiledCore::default();
        assert_eq!(cc.levelize(), (0, 0));
    }
}
