//! The discrete-event simulation core: signal arena, event wheel,
//! delta-cycle loop, message log and statistics.

use crate::component::{CompKind, Component, Ctx};
use crate::lv::Lv;
use crate::profile::Profiler;
use crate::vcd::VcdWriter;
use crate::{CompId, Severity, SignalId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Maximum delta iterations at one time point before the kernel declares a
/// combinational oscillation (like an HDL simulator's iteration limit).
pub const DELTA_LIMIT: u32 = 10_000;

/// A timestamped diagnostic produced by a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimMessage {
    /// Simulation time of the report, in picoseconds.
    pub time_ps: u64,
    /// Message class.
    pub severity: Severity,
    /// Hierarchical name of the reporting component.
    pub component: String,
    /// Free-form text.
    pub text: String,
}

impl fmt::Display for SimMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12} ps] {:?} {}: {}",
            self.time_ps, self.severity, self.component, self.text
        )
    }
}

pub(crate) struct SignalState {
    pub name: String,
    pub width: u8,
    pub cur: Lv,
    pub prev: Lv,
    /// Global step number of the most recent value change.
    pub last_change: u64,
    /// Components sensitive to any change of this signal.
    pub sensitive: Vec<CompId>,
    /// Number of value changes since time 0.
    pub toggles: u64,
}

struct CompSlot {
    name: String,
    kind: CompKind,
    body: Option<Box<dyn Component>>,
    /// True while the component is queued in the current ready set.
    queued: bool,
    evals: u64,
}

#[derive(PartialEq, Eq)]
enum EventKind {
    Drive(SignalId, Lv),
    Wake(CompId),
}

struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Mutable kernel state shared with evaluation contexts.
pub(crate) struct SimCore {
    pub now: u64,
    /// Monotonic counter incremented once per delta application phase;
    /// used for edge detection.
    pub step: u64,
    seq: u64,
    pub signals: Vec<SignalState>,
    events: BinaryHeap<Reverse<Event>>,
    /// Non-blocking writes accumulated during the current delta.
    pub pending: Vec<(SignalId, Lv)>,
    pub messages: Vec<SimMessage>,
    pub finish_requested: bool,
    comp_names: Vec<(String, CompKind)>,
}

impl SimCore {
    pub fn schedule_drive(&mut self, time: u64, sig: SignalId, v: Lv) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind: EventKind::Drive(sig, v),
        }));
    }

    pub fn schedule_wake(&mut self, time: u64, comp: CompId) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind: EventKind::Wake(comp),
        }));
    }

    pub fn comp_name(&self, c: CompId) -> &str {
        &self.comp_names[c.0 as usize].0
    }
}

/// Cumulative kernel statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Total component evaluations performed.
    pub evals: u64,
    /// Total delta cycles executed.
    pub deltas: u64,
    /// Total distinct time points visited.
    pub time_points: u64,
    /// Total signal value changes.
    pub toggles: u64,
}

/// The top-level event-driven simulator.
///
/// Construction wires signals and components; [`Simulator::run_for`] /
/// [`Simulator::run_until`] advance time. The kernel implements the
/// standard two-phase HDL scheduling model: within one delta, all
/// triggered components evaluate against a frozen signal state, then their
/// non-blocking writes apply together, possibly triggering another delta.
pub struct Simulator {
    core: SimCore,
    comps: Vec<CompSlot>,
    ready: Vec<CompId>,
    profiler: Profiler,
    vcd: Option<VcdWriter>,
    stats: SimStats,
    /// Components that have never run yet (initial eval at first run call).
    uninitialized: Vec<CompId>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Create an empty simulator at time 0.
    pub fn new() -> Simulator {
        Simulator {
            core: SimCore {
                now: 0,
                step: 1,
                seq: 0,
                signals: Vec::new(),
                events: BinaryHeap::new(),
                pending: Vec::new(),
                messages: Vec::new(),
                finish_requested: false,
                comp_names: Vec::new(),
            },
            comps: Vec::new(),
            ready: Vec::new(),
            profiler: Profiler::new(),
            vcd: None,
            stats: SimStats::default(),
            uninitialized: Vec::new(),
        }
    }

    /// Declare a new signal. Initial value is all-`X` (uninitialised), as
    /// in a 4-state HDL simulator.
    pub fn signal(&mut self, name: impl Into<String>, width: u8) -> SignalId {
        let id = SignalId(self.core.signals.len() as u32);
        self.core.signals.push(SignalState {
            name: name.into(),
            width,
            cur: Lv::xes(width),
            prev: Lv::xes(width),
            last_change: 0,
            sensitive: Vec::new(),
            toggles: 0,
        });
        id
    }

    /// Declare a signal with a known initial value.
    pub fn signal_init(&mut self, name: impl Into<String>, width: u8, init: u64) -> SignalId {
        let id = self.signal(name, width);
        self.core.signals[id.0 as usize].cur = Lv::from_u64(width, init);
        self.core.signals[id.0 as usize].prev = Lv::from_u64(width, init);
        id
    }

    /// Register a component. `sensitivity` lists the signals whose changes
    /// trigger evaluation; every component additionally gets one initial
    /// evaluation when the simulation first runs (like an HDL `initial`).
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        kind: CompKind,
        body: Box<dyn Component>,
        sensitivity: &[SignalId],
    ) -> CompId {
        let id = CompId(self.comps.len() as u32);
        let name = name.into();
        self.comps.push(CompSlot {
            name: name.clone(),
            kind,
            body: Some(body),
            queued: false,
            evals: 0,
        });
        self.core.comp_names.push((name, kind));
        for &s in sensitivity {
            self.core.signals[s.0 as usize].sensitive.push(id);
        }
        self.profiler.register(id, kind);
        self.uninitialized.push(id);
        id
    }

    /// Add extra sensitivity after registration.
    pub fn sensitize(&mut self, comp: CompId, signals: &[SignalId]) {
        for &s in signals {
            self.core.signals[s.0 as usize].sensitive.push(comp);
        }
    }

    /// Current simulation time in picoseconds.
    pub fn now(&self) -> u64 {
        self.core.now
    }

    /// Peek a signal's current value (testbench read).
    pub fn peek(&self, s: SignalId) -> Lv {
        self.core.signals[s.0 as usize].cur
    }

    /// Peek as `u64` (None if unknown bits).
    pub fn peek_u64(&self, s: SignalId) -> Option<u64> {
        self.peek(s).to_u64()
    }

    /// Drive a signal from the testbench; takes effect when the simulation
    /// next advances (scheduled at the current time).
    pub fn poke(&mut self, s: SignalId, v: Lv) {
        let w = self.core.signals[s.0 as usize].width;
        let t = self.core.now;
        self.core.schedule_drive(t, s, v.resize(w));
    }

    /// Drive a known value from the testbench.
    pub fn poke_u64(&mut self, s: SignalId, v: u64) {
        let w = self.core.signals[s.0 as usize].width;
        self.poke(s, Lv::from_u64(w, v));
    }

    /// Signal name lookup.
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.core.signals[s.0 as usize].name
    }

    /// Number of value changes a signal has seen (activity measure; the
    /// paper's CIE-vs-ME elapsed-time inversion is explained by exactly
    /// this quantity).
    pub fn toggle_count(&self, s: SignalId) -> u64 {
        self.core.signals[s.0 as usize].toggles
    }

    /// Sum of toggle counts over all signals whose hierarchical name
    /// starts with `prefix`.
    pub fn toggle_count_prefix(&self, prefix: &str) -> u64 {
        self.core
            .signals
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .map(|s| s.toggles)
            .sum()
    }

    /// Enable VCD waveform tracing of all signals to `path`.
    pub fn trace_vcd(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let names: Vec<(String, u8)> = self
            .core
            .signals
            .iter()
            .map(|s| (s.name.clone(), s.width))
            .collect();
        self.vcd = Some(VcdWriter::create(path, &names)?);
        Ok(())
    }

    /// Enable or disable per-component wall-time profiling.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiler.set_enabled(on);
    }

    /// Access the profiler report.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Cumulative kernel statistics.
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats;
        s.toggles = self.core.signals.iter().map(|x| x.toggles).sum();
        s
    }

    /// Per-component evaluation counts, as (name, kind, evals).
    pub fn eval_counts(&self) -> Vec<(String, CompKind, u64)> {
        self.comps
            .iter()
            .map(|c| (c.name.clone(), c.kind, c.evals))
            .collect()
    }

    /// All diagnostics recorded so far.
    pub fn messages(&self) -> &[SimMessage] {
        &self.core.messages
    }

    /// Drain diagnostics.
    pub fn take_messages(&mut self) -> Vec<SimMessage> {
        std::mem::take(&mut self.core.messages)
    }

    /// True if any component reported an error.
    pub fn has_errors(&self) -> bool {
        self.core
            .messages
            .iter()
            .any(|m| m.severity == Severity::Error)
    }

    /// Record a message from the testbench itself.
    pub fn report(&mut self, severity: Severity, text: impl Into<String>) {
        let now = self.core.now;
        self.core.messages.push(SimMessage {
            time_ps: now,
            severity,
            component: "testbench".into(),
            text: text.into(),
        });
    }

    /// True if a component called [`Ctx::finish`].
    pub fn finished(&self) -> bool {
        self.core.finish_requested
    }

    fn mark_sensitive(
        signals: &[SignalState],
        comps: &mut [CompSlot],
        ready: &mut Vec<CompId>,
        sig: SignalId,
    ) {
        for &c in &signals[sig.0 as usize].sensitive {
            let slot = &mut comps[c.0 as usize];
            if !slot.queued {
                slot.queued = true;
                ready.push(c);
            }
        }
    }

    /// Apply a value to a signal; returns true if it changed.
    fn apply(&mut self, sig: SignalId, v: Lv) -> bool {
        let s = &mut self.core.signals[sig.0 as usize];
        if s.cur.eq_case(&v) {
            return false;
        }
        s.prev = s.cur;
        s.cur = v;
        s.last_change = self.core.step;
        s.toggles += 1;
        if let Some(vcd) = &mut self.vcd {
            vcd.change(self.core.now, sig, v);
        }
        Self::mark_sensitive(&self.core.signals, &mut self.comps, &mut self.ready, sig);
        true
    }

    fn eval_ready(&mut self) {
        let ready: Vec<CompId> = self.ready.drain(..).collect();
        for c in ready {
            self.comps[c.0 as usize].queued = false;
            let mut body = self.comps[c.0 as usize]
                .body
                .take()
                .expect("component re-entered during its own eval");
            self.comps[c.0 as usize].evals += 1;
            self.stats.evals += 1;
            let t0 = self.profiler.begin();
            {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    me: c,
                };
                body.eval(&mut ctx);
            }
            self.profiler.end(c, t0);
            self.comps[c.0 as usize].body = Some(body);
        }
    }

    /// Execute all deltas at the current time until quiescent.
    fn settle_now(&mut self) -> Result<(), SimError> {
        let mut deltas = 0u32;
        loop {
            // Pop events scheduled for exactly `now`.
            let mut popped = false;
            while let Some(Reverse(ev)) = self.core.events.peek() {
                if ev.time != self.core.now {
                    break;
                }
                let Reverse(ev) = self.core.events.pop().unwrap();
                popped = true;
                match ev.kind {
                    EventKind::Drive(sig, v) => {
                        self.apply(sig, v);
                    }
                    EventKind::Wake(c) => {
                        let slot = &mut self.comps[c.0 as usize];
                        if !slot.queued {
                            slot.queued = true;
                            self.ready.push(c);
                        }
                    }
                }
            }
            if self.ready.is_empty() && !popped {
                return Ok(());
            }
            self.eval_ready();
            // Apply non-blocking writes; they constitute the next delta.
            let pending: Vec<(SignalId, Lv)> = self.core.pending.drain(..).collect();
            self.core.step += 1;
            self.stats.deltas += 1;
            for (sig, v) in pending {
                self.apply(sig, v);
            }
            deltas += 1;
            if deltas > DELTA_LIMIT {
                return Err(SimError::DeltaOverflow {
                    time_ps: self.core.now,
                });
            }
            if self.core.finish_requested {
                return Ok(());
            }
        }
    }

    fn init_components(&mut self) {
        for c in std::mem::take(&mut self.uninitialized) {
            let slot = &mut self.comps[c.0 as usize];
            if !slot.queued {
                slot.queued = true;
                self.ready.push(c);
            }
        }
    }

    /// Run until `deadline` ps (inclusive of events at the deadline) or
    /// until a component calls `finish`. On return the current time is
    /// `deadline` (unless finished early), so testbench pokes issued
    /// between run calls land when wall-of-code order suggests.
    pub fn run_until(&mut self, deadline: u64) -> Result<(), SimError> {
        self.init_components();
        loop {
            self.settle_now()?;
            if self.core.finish_requested {
                return Ok(());
            }
            let next = match self.core.events.peek() {
                Some(Reverse(ev)) => ev.time,
                None => {
                    self.core.now = self.core.now.max(deadline);
                    return Ok(());
                }
            };
            debug_assert!(next > self.core.now, "settle_now left same-time events");
            if next > deadline {
                self.core.now = deadline;
                return Ok(());
            }
            self.core.now = next;
            self.core.step += 1;
            self.stats.time_points += 1;
        }
    }

    /// Run for `duration` ps past the current time.
    pub fn run_for(&mut self, duration: u64) -> Result<(), SimError> {
        let d = self.core.now + duration;
        self.run_until(d)
    }

    /// Execute pending same-time activity without advancing time.
    pub fn settle(&mut self) -> Result<(), SimError> {
        self.init_components();
        self.settle_now()
    }

    /// Flush the VCD trace (call before dropping if you need the file).
    pub fn flush_vcd(&mut self) -> std::io::Result<()> {
        if let Some(v) = &mut self.vcd {
            v.flush()?;
        }
        Ok(())
    }
}

/// Kernel-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Combinational oscillation: the delta limit was exceeded at one
    /// time point.
    DeltaOverflow {
        /// The time at which the oscillation occurred.
        time_ps: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeltaOverflow { time_ps } => {
                write!(f, "delta-cycle oscillation at t={time_ps} ps")
            }
        }
    }
}

impl std::error::Error for SimError {}
