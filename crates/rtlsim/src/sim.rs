//! The discrete-event simulation core: signal arena, two-level event
//! scheduler (near-term timing wheel + far-horizon heap), allocation-free
//! delta-cycle loop, message log and statistics.
//!
//! # Scheduler
//!
//! Events live in one of two structures depending on how far ahead they
//! are scheduled:
//!
//! * A **timing wheel** of `WHEEL_SLOTS` dense slots, each covering
//!   2^`TICK_SHIFT` ps. The wheel spans ~105 clock periods of the
//!   AutoVision system clock, so in steady state essentially every event
//!   (clock edges, register updates, bus handshakes) is an O(1) push into
//!   a slot `Vec` plus one bit set in an occupancy bitmap.
//! * A **far-horizon `BinaryHeap`** for the rare event beyond the wheel
//!   window (watchdog deadlines, long reset delays). Events migrate
//!   lazily from the heap into the wheel as time advances.
//!
//! Determinism is preserved exactly: every event carries the global
//! sequence number it was scheduled with, and the batch extracted at one
//! timestamp is sorted by that sequence before it is applied, so
//! same-timestamp ordering is identical to the old single-heap kernel
//! (pinned by `tests/determinism.rs`).
//!
//! # Delta loop
//!
//! The loop allocates nothing per delta: the popped-event batch, the
//! ready queue and the non-blocking-write list are all reusable buffers,
//! and ready-queue membership is tracked with a generation stamp instead
//! of a drained `bool` flag.

use crate::compiled::{
    cflag, CompiledCore, CompiledStats, DirtyWatch, DoorbellId, ExecMode, NO_CLOCK,
};
use crate::component::{CompKind, Component, Ctx};
use crate::lv::Lv;
use crate::name::{Name, NameArena, NameId};
use crate::profile::Profiler;
use crate::trace::{TraceBuf, TraceCat, TraceEvent, TraceKind, DEFAULT_TRACE_CAPACITY};
use crate::vcd::VcdWriter;
use crate::{CompId, Severity, SignalId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Maximum delta iterations at one time point before the kernel declares a
/// combinational oscillation (like an HDL simulator's iteration limit).
pub const DELTA_LIMIT: u32 = 10_000;

/// Time points between scheduler-occupancy counter samples while the
/// structured trace is enabled.
const SCHED_SAMPLE_PERIOD: u64 = 4096;

/// A timestamped diagnostic produced by a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimMessage {
    /// Simulation time of the report, in picoseconds.
    pub time_ps: u64,
    /// Message class.
    pub severity: Severity,
    /// Hierarchical name of the reporting component (interned; cloning
    /// is a reference-count bump).
    pub component: Name,
    /// Free-form text.
    pub text: String,
}

impl fmt::Display for SimMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12} ps] {:?} {}: {}",
            self.time_ps, self.severity, self.component, self.text
        )
    }
}

pub(crate) struct SignalState {
    pub name: NameId,
    pub width: u8,
    pub cur: Lv,
    pub prev: Lv,
    /// Global step number of the most recent value change.
    pub last_change: u64,
    /// Components sensitive to any change of this signal.
    pub sensitive: Vec<CompId>,
    /// Number of value changes since time 0.
    pub toggles: u64,
    /// Compiled-plane flags (dirty watches, park wake list presence);
    /// see [`crate::compiled::cflag`]. Zero for ordinary signals.
    pub cflags: u8,
}

struct CompSlot {
    name: NameId,
    kind: CompKind,
    body: Option<Box<dyn Component>>,
    /// Equals the simulator's current ready generation while the
    /// component is queued in the ready set (generation stamping avoids
    /// a clear pass over all slots per delta).
    queued_gen: u64,
    evals: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Drive(SignalId, Lv),
    Wake(CompId),
}

#[derive(Clone, Copy)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Number of slots in the near-term timing wheel. Power of two.
const WHEEL_SLOTS: usize = 1024;
const WHEEL_MASK: usize = WHEEL_SLOTS - 1;
/// log2 of the time span (ps) covered by one wheel slot.
const TICK_SHIFT: u32 = 10;
/// Words in the slot-occupancy bitmap.
const OCC_WORDS: usize = WHEEL_SLOTS / 64;

/// Two-level event scheduler: dense timing wheel for the near term, heap
/// for the far horizon.
///
/// Invariants (checked in debug builds):
/// * No event is ever scheduled in the past, so every pending event's
///   tick is ≥ `self.tick` — slots behind the cursor are empty.
/// * Within the wheel window of `WHEEL_SLOTS` ticks, each tick maps to a
///   unique slot, so all events in one slot share a tick.
/// * Far-heap events all lie beyond the window, so whenever the wheel is
///   non-empty its minimum precedes the heap's minimum.
struct Scheduler {
    slots: Box<[Vec<Event>]>,
    /// One bit per slot: set iff the slot is non-empty.
    occ: [u64; OCC_WORDS],
    /// Wheel cursor: current time >> [`TICK_SHIFT`].
    tick: u64,
    /// Events currently in the wheel.
    len: usize,
    /// Events beyond the wheel window, migrated in lazily by `advance`.
    far: BinaryHeap<Reverse<Event>>,
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; OCC_WORDS],
            tick: 0,
            len: 0,
            far: BinaryHeap::new(),
        }
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        let t = ev.time >> TICK_SHIFT;
        debug_assert!(t >= self.tick, "event scheduled in the past");
        if t < self.tick + WHEEL_SLOTS as u64 {
            self.push_wheel(ev, t);
        } else {
            self.far.push(Reverse(ev));
        }
    }

    #[inline]
    fn push_wheel(&mut self, ev: Event, tick: u64) {
        let idx = (tick as usize) & WHEEL_MASK;
        self.slots[idx].push(ev);
        self.occ[idx / 64] |= 1u64 << (idx % 64);
        self.len += 1;
    }

    /// Move the cursor forward to `now`'s tick and migrate far-heap
    /// events that fall inside the new wheel window.
    fn advance(&mut self, now: u64) {
        let new_tick = now >> TICK_SHIFT;
        if new_tick <= self.tick {
            return;
        }
        self.tick = new_tick;
        let horizon = new_tick + WHEEL_SLOTS as u64;
        while self
            .far
            .peek()
            .is_some_and(|Reverse(ev)| (ev.time >> TICK_SHIFT) < horizon)
        {
            let Reverse(ev) = self.far.pop().expect("peeked event is still queued");
            let tick = ev.time >> TICK_SHIFT;
            self.push_wheel(ev, tick);
        }
    }

    /// Extract every event scheduled for exactly `now` into `out`, in
    /// the order it was scheduled (sequence order).
    fn pop_at(&mut self, now: u64, out: &mut Vec<Event>) {
        self.advance(now);
        out.clear();
        let idx = ((now >> TICK_SHIFT) as usize) & WHEEL_MASK;
        if self.occ[idx / 64] & (1u64 << (idx % 64)) == 0 {
            return;
        }
        let slot = &mut self.slots[idx];
        let mut i = 0;
        while i < slot.len() {
            if slot[i].time == now {
                out.push(slot.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.len -= out.len();
        if slot.is_empty() {
            self.occ[idx / 64] &= !(1u64 << (idx % 64));
        }
        // swap_remove scrambles order, and heap→wheel migration can
        // interleave batches; the global sequence number restores the
        // exact scheduling order at this timestamp.
        out.sort_unstable_by_key(|e| e.seq);
    }

    /// Total pending events (wheel + far horizon) — the occupancy the
    /// kernel samples into the trace as a counter track.
    fn pending_events(&self) -> usize {
        self.len + self.far.len()
    }

    /// Time of the earliest pending event, if any.
    fn next_time(&self) -> Option<u64> {
        if self.len > 0 {
            let idx = self
                .first_occupied((self.tick as usize) & WHEEL_MASK)
                .expect("wheel count positive but occupancy bitmap empty");
            return self.slots[idx].iter().map(|e| e.time).min();
        }
        self.far.peek().map(|r| r.0.time)
    }

    /// First non-empty slot at or circularly after `start` (ascending
    /// tick order, since the window maps ticks to slots injectively).
    fn first_occupied(&self, start: usize) -> Option<usize> {
        let sw = start / 64;
        let sb = start % 64;
        let w = self.occ[sw] & (!0u64 << sb);
        if w != 0 {
            return Some(sw * 64 + w.trailing_zeros() as usize);
        }
        for off in 1..OCC_WORDS {
            let wi = (sw + off) & (OCC_WORDS - 1);
            let w = self.occ[wi];
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        let w = self.occ[sw] & !(!0u64 << sb);
        if w != 0 {
            return Some(sw * 64 + w.trailing_zeros() as usize);
        }
        None
    }
}

/// Mutable kernel state shared with evaluation contexts.
pub(crate) struct SimCore {
    pub now: u64,
    /// Monotonic counter incremented once per delta application phase;
    /// used for edge detection.
    pub step: u64,
    seq: u64,
    pub signals: Vec<SignalState>,
    sched: Scheduler,
    /// Non-blocking writes accumulated during the current delta.
    pub pending: Vec<(SignalId, Lv)>,
    pub messages: Vec<SimMessage>,
    pub finish_requested: bool,
    pub names: NameArena,
    comp_names: Vec<(NameId, CompKind)>,
    /// Structured-event sink (see [`crate::trace`]); off by default.
    pub trace: TraceBuf,
    /// Compiled-plane state (see [`crate::compiled`]); inert while the
    /// execution mode is [`ExecMode::EventDriven`].
    pub compiled: CompiledCore,
}

impl SimCore {
    pub fn schedule_drive(&mut self, time: u64, sig: SignalId, v: Lv) {
        self.seq += 1;
        self.sched.push(Event {
            time,
            seq: self.seq,
            kind: EventKind::Drive(sig, v),
        });
    }

    pub fn schedule_wake(&mut self, time: u64, comp: CompId) {
        self.seq += 1;
        self.sched.push(Event {
            time,
            seq: self.seq,
            kind: EventKind::Wake(comp),
        });
    }

    pub fn comp_name(&self, c: CompId) -> &Name {
        self.names.resolve(self.comp_names[c.0 as usize].0)
    }

    /// Park `comp` until one of `signals` changes value or one of
    /// `doorbells` rings (see [`Ctx::park_until`]). No-op in event-driven
    /// mode. The wake set is latched from the first call.
    pub fn park_until(&mut self, comp: CompId, signals: &[SignalId], doorbells: &[DoorbellId]) {
        let cc = &mut self.compiled;
        if !cc.mode.is_compiled() {
            return;
        }
        cc.ensure_comps(self.comp_names.len());
        let idx = comp.0 as usize;
        if !cc.wake_registered[idx] {
            cc.wake_registered[idx] = true;
            cc.ensure_signals(self.signals.len());
            for &s in signals {
                cc.wakers[s.0 as usize].push(comp);
                self.signals[s.0 as usize].cflags |= cflag::HAS_WAKERS;
            }
            for &d in doorbells {
                cc.doorbells[d.0 as usize].1.push(comp);
            }
        }
        cc.parked[idx] = true;
        cc.stats.parks += 1;
    }
}

/// Cumulative kernel statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Total component evaluations performed.
    pub evals: u64,
    /// Total delta cycles executed.
    pub deltas: u64,
    /// Total distinct time points visited.
    pub time_points: u64,
    /// Total signal value changes.
    pub toggles: u64,
    /// Total events scheduled (drives + wakeups).
    pub events: u64,
}

/// The top-level event-driven simulator.
///
/// Construction wires signals and components; [`Simulator::run_for`] /
/// [`Simulator::run_until`] advance time. The kernel implements the
/// standard two-phase HDL scheduling model: within one delta, all
/// triggered components evaluate against a frozen signal state, then their
/// non-blocking writes apply together, possibly triggering another delta.
pub struct Simulator {
    core: SimCore,
    comps: Vec<CompSlot>,
    /// Reusable ready queue; membership tracked by `ready_gen` stamps.
    ready: Vec<CompId>,
    ready_gen: u64,
    /// Reusable buffer for the event batch popped at one timestamp.
    pop_scratch: Vec<Event>,
    profiler: Profiler,
    /// Mirror of the profiler's enabled flag, checked on the hot path.
    profiling: bool,
    vcd: Option<VcdWriter>,
    /// True iff a VCD sink is attached; hot-path gate for trace hooks.
    tracing: bool,
    stats: SimStats,
    /// Components that have never run yet (initial eval at first run call).
    uninitialized: Vec<CompId>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Create an empty simulator at time 0.
    pub fn new() -> Simulator {
        Simulator {
            core: SimCore {
                now: 0,
                step: 1,
                seq: 0,
                signals: Vec::new(),
                sched: Scheduler::new(),
                pending: Vec::new(),
                messages: Vec::new(),
                finish_requested: false,
                names: NameArena::new(),
                comp_names: Vec::new(),
                trace: TraceBuf::new(),
                compiled: CompiledCore::default(),
            },
            comps: Vec::new(),
            ready: Vec::new(),
            ready_gen: 1,
            pop_scratch: Vec::new(),
            profiler: Profiler::new(),
            profiling: false,
            vcd: None,
            tracing: false,
            stats: SimStats::default(),
            uninitialized: Vec::new(),
        }
    }

    /// Declare a new signal. Initial value is all-`X` (uninitialised), as
    /// in a 4-state HDL simulator.
    pub fn signal(&mut self, name: impl AsRef<str>, width: u8) -> SignalId {
        let id = SignalId(self.core.signals.len() as u32);
        let name = self.core.names.intern(name.as_ref());
        self.core.signals.push(SignalState {
            name,
            width,
            cur: Lv::xes(width),
            prev: Lv::xes(width),
            last_change: 0,
            sensitive: Vec::new(),
            toggles: 0,
            cflags: 0,
        });
        id
    }

    /// Declare a signal with a known initial value.
    pub fn signal_init(&mut self, name: impl AsRef<str>, width: u8, init: u64) -> SignalId {
        let id = self.signal(name, width);
        self.core.signals[id.0 as usize].cur = Lv::from_u64(width, init);
        self.core.signals[id.0 as usize].prev = Lv::from_u64(width, init);
        id
    }

    /// Register a component. `sensitivity` lists the signals whose changes
    /// trigger evaluation; every component additionally gets one initial
    /// evaluation when the simulation first runs (like an HDL `initial`).
    pub fn add_component(
        &mut self,
        name: impl AsRef<str>,
        kind: CompKind,
        body: Box<dyn Component>,
        sensitivity: &[SignalId],
    ) -> CompId {
        let id = CompId(self.comps.len() as u32);
        let name = self.core.names.intern(name.as_ref());
        self.comps.push(CompSlot {
            name,
            kind,
            body: Some(body),
            queued_gen: 0,
            evals: 0,
        });
        self.core.comp_names.push((name, kind));
        for &s in sensitivity {
            self.core.signals[s.0 as usize].sensitive.push(id);
        }
        self.profiler.register(id, kind);
        self.uninitialized.push(id);
        id
    }

    /// Add extra sensitivity after registration.
    pub fn sensitize(&mut self, comp: CompId, signals: &[SignalId]) {
        for &s in signals {
            self.core.signals[s.0 as usize].sensitive.push(comp);
        }
    }

    /// Current simulation time in picoseconds.
    pub fn now(&self) -> u64 {
        self.core.now
    }

    /// Peek a signal's current value (testbench read).
    pub fn peek(&self, s: SignalId) -> Lv {
        self.core.signals[s.0 as usize].cur
    }

    /// Peek as `u64` (None if unknown bits).
    pub fn peek_u64(&self, s: SignalId) -> Option<u64> {
        self.peek(s).to_u64()
    }

    /// Drive a signal from the testbench; takes effect when the simulation
    /// next advances (scheduled at the current time).
    pub fn poke(&mut self, s: SignalId, v: Lv) {
        let w = self.core.signals[s.0 as usize].width;
        let t = self.core.now;
        self.core.schedule_drive(t, s, v.resize(w));
    }

    /// Drive a known value from the testbench.
    pub fn poke_u64(&mut self, s: SignalId, v: u64) {
        let w = self.core.signals[s.0 as usize].width;
        self.poke(s, Lv::from_u64(w, v));
    }

    /// Signal name lookup.
    pub fn signal_name(&self, s: SignalId) -> &str {
        self.core
            .names
            .resolve(self.core.signals[s.0 as usize].name)
            .as_str()
    }

    /// Number of value changes a signal has seen (activity measure; the
    /// paper's CIE-vs-ME elapsed-time inversion is explained by exactly
    /// this quantity).
    pub fn toggle_count(&self, s: SignalId) -> u64 {
        self.core.signals[s.0 as usize].toggles
    }

    /// Sum of toggle counts over all signals whose hierarchical name
    /// starts with `prefix`.
    ///
    /// Legacy stringly lookup: it re-scans every signal name on each
    /// call. Resolve once with [`Simulator::signals_with_prefix`] (or
    /// `verif`'s typed `ActivityProbe`) and read through the handles
    /// instead.
    #[doc(hidden)]
    pub fn toggle_count_prefix(&self, prefix: &str) -> u64 {
        self.toggle_count_set(&self.signals_with_prefix(prefix))
    }

    /// Resolve the set of signals whose hierarchical name starts with
    /// `prefix` — once, at build time — into typed handles usable for
    /// repeated activity reads without any string matching.
    pub fn signals_with_prefix(&self, prefix: &str) -> Vec<SignalId> {
        self.core
            .signals
            .iter()
            .enumerate()
            .filter(|(_, s)| self.core.names.resolve(s.name).starts_with(prefix))
            .map(|(i, _)| SignalId(i as u32))
            .collect()
    }

    /// Sum of toggle counts over a resolved signal set.
    pub fn toggle_count_set(&self, signals: &[SignalId]) -> u64 {
        signals.iter().map(|s| self.toggle_count(*s)).sum()
    }

    /// Enable VCD waveform tracing of all signals to `path`.
    pub fn trace_vcd(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let names: Vec<(String, u8)> = self
            .core
            .signals
            .iter()
            .map(|s| (self.core.names.resolve(s.name).to_string(), s.width))
            .collect();
        self.vcd = Some(VcdWriter::create(path, &names)?);
        self.tracing = true;
        Ok(())
    }

    /// Enable structured event tracing (see [`crate::trace`]) with the
    /// default ring capacity. A pure observer: enabling it never changes
    /// simulation results, and while it stays off every emission helper
    /// is a single predicted-not-taken branch.
    pub fn enable_trace(&mut self) {
        self.enable_trace_with_capacity(DEFAULT_TRACE_CAPACITY);
    }

    /// Enable structured event tracing with an explicit ring capacity
    /// (events; oldest are overwritten once full).
    pub fn enable_trace_with_capacity(&mut self, capacity: usize) {
        self.core.trace.enable(capacity);
    }

    /// True if the structured-event sink is on.
    pub fn trace_enabled(&self) -> bool {
        self.core.trace.enabled
    }

    /// Recorded trace events in emission order (oldest retained first).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.core.trace.events()
    }

    /// Events lost to ring overwrite.
    pub fn trace_dropped(&self) -> u64 {
        self.core.trace.dropped()
    }

    /// Emit a trace event from the testbench (components use the `Ctx`
    /// helpers instead). No-op while tracing is off.
    pub fn trace_emit(
        &mut self,
        kind: TraceKind,
        cat: TraceCat,
        name: &'static str,
        track: u32,
        arg: u64,
    ) {
        if self.core.trace.enabled {
            let now = self.core.now;
            self.core.trace.push(now, kind, cat, name, track, arg);
        }
    }

    /// Enable or disable per-component wall-time profiling (off by
    /// default — sampling clock reads cost measurable throughput).
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
        self.profiler.set_enabled(on);
    }

    /// Access the profiler report.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Cumulative kernel statistics.
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats;
        s.toggles = self.core.signals.iter().map(|x| x.toggles).sum();
        s.events = self.core.seq;
        s
    }

    /// Per-component evaluation counts, as (name, kind, evals). Names are
    /// interned handles; cloning the result does not copy strings.
    pub fn eval_counts(&self) -> Vec<(Name, CompKind, u64)> {
        self.comps
            .iter()
            .map(|c| (self.core.names.resolve(c.name).clone(), c.kind, c.evals))
            .collect()
    }

    /// All diagnostics recorded so far.
    pub fn messages(&self) -> &[SimMessage] {
        &self.core.messages
    }

    /// Drain diagnostics.
    pub fn take_messages(&mut self) -> Vec<SimMessage> {
        std::mem::take(&mut self.core.messages)
    }

    /// True if any component reported an error.
    pub fn has_errors(&self) -> bool {
        self.core
            .messages
            .iter()
            .any(|m| m.severity == Severity::Error)
    }

    /// Record a message from the testbench itself.
    pub fn report(&mut self, severity: Severity, text: impl Into<String>) {
        let id = self.core.names.intern("testbench");
        let component = self.core.names.resolve(id).clone();
        let now = self.core.now;
        self.core.messages.push(SimMessage {
            time_ps: now,
            severity,
            component,
            text: text.into(),
        });
    }

    /// True if a component called [`Ctx::finish`].
    pub fn finished(&self) -> bool {
        self.core.finish_requested
    }

    fn mark_sensitive(
        signals: &[SignalState],
        comps: &mut [CompSlot],
        ready: &mut Vec<CompId>,
        gen: u64,
        sig: SignalId,
    ) {
        for &c in &signals[sig.0 as usize].sensitive {
            let slot = &mut comps[c.0 as usize];
            if slot.queued_gen != gen {
                slot.queued_gen = gen;
                ready.push(c);
            }
        }
    }

    /// As [`Simulator::mark_sensitive`], honouring the compiled dispatch
    /// filter: parked components and wrong-edge activations of declared
    /// clocked components are provably observable no-ops and are skipped.
    /// Iteration order over the remaining components is unchanged, which
    /// keeps the ready queue (and thus the delta schedule) identical to
    /// event-driven mode restricted to the dispatched set.
    fn mark_sensitive_filtered(
        signals: &[SignalState],
        comps: &mut [CompSlot],
        ready: &mut Vec<CompId>,
        gen: u64,
        sig: SignalId,
        compiled: &mut CompiledCore,
        rose: bool,
    ) {
        for &c in &signals[sig.0 as usize].sensitive {
            let idx = c.0 as usize;
            if compiled.parked[idx] {
                compiled.stats.skipped_parked += 1;
                continue;
            }
            if !rose && compiled.clock_of[idx] == sig.0 {
                compiled.stats.skipped_edge += 1;
                continue;
            }
            let slot = &mut comps[idx];
            if slot.queued_gen != gen {
                slot.queued_gen = gen;
                ready.push(c);
            }
        }
    }

    /// Apply a value to a signal; returns true if it changed.
    fn apply(&mut self, sig: SignalId, v: Lv) -> bool {
        let s = &mut self.core.signals[sig.0 as usize];
        if s.cur.eq_case(&v) {
            return false;
        }
        s.prev = s.cur;
        s.cur = v;
        s.last_change = self.core.step;
        s.toggles += 1;
        let cflags = s.cflags;
        let rose = !s.prev.truthy() && s.cur.truthy();
        if self.tracing {
            if let Some(vcd) = &mut self.vcd {
                vcd.change(self.core.now, sig, v);
            }
        }
        if cflags != 0 {
            self.signal_compiled_hooks(sig, cflags);
        }
        if self.core.compiled.filtering {
            Self::mark_sensitive_filtered(
                &self.core.signals,
                &mut self.comps,
                &mut self.ready,
                self.ready_gen,
                sig,
                &mut self.core.compiled,
                rose,
            );
        } else {
            Self::mark_sensitive(
                &self.core.signals,
                &mut self.comps,
                &mut self.ready,
                self.ready_gen,
                sig,
            );
        }
        true
    }

    /// Cold path of [`Simulator::apply`] for signals carrying compiled
    /// flags: wake parked listeners and track dirty-window membership.
    /// Runs in every mode so park/dirty state stays consistent even while
    /// filtering is suspended.
    fn signal_compiled_hooks(&mut self, sig: SignalId, cflags: u8) {
        let cc = &mut self.core.compiled;
        if cflags & cflag::HAS_WAKERS != 0 {
            for &c in &cc.wakers[sig.0 as usize] {
                if cc.parked[c.0 as usize] {
                    cc.parked[c.0 as usize] = false;
                    cc.stats.signal_wakes += 1;
                }
            }
        }
        if cflags & cflag::WATCH_ANY != 0 {
            let s = &mut self.core.signals[sig.0 as usize];
            let dirty = (cflags & cflag::WATCH_TRUTHY != 0 && s.cur.truthy())
                || (cflags & cflag::WATCH_UNKNOWN != 0 && s.cur.has_unknown());
            let was = cflags & cflag::DIRTY_NOW != 0;
            if dirty != was {
                // Window bookkeeping lives outside the structured trace
                // sink: the TraceBuf stream is pinned bit-identical
                // between execution modes, so fallback spans are logged
                // separately and exported by the observability layer.
                if dirty {
                    s.cflags |= cflag::DIRTY_NOW;
                    cc.dirty_count += 1;
                    if cc.dirty_count == 1 && cc.mode.is_compiled() {
                        cc.stats.fallback_entries += 1;
                        cc.unpark_all();
                        cc.refresh_gate();
                        cc.windows.push((self.core.now, u64::MAX));
                    }
                } else {
                    s.cflags &= !cflag::DIRTY_NOW;
                    cc.dirty_count -= 1;
                    if cc.dirty_count == 0 && cc.mode.is_compiled() {
                        cc.stats.fallback_exits += 1;
                        cc.refresh_gate();
                        if let Some(w) = cc.windows.last_mut() {
                            w.1 = self.core.now;
                        }
                    }
                }
            }
        }
    }

    fn eval_ready(&mut self) {
        // Components cannot be re-queued while this batch runs (queueing
        // only happens in `apply`, which the eval phase never calls), so
        // the length is fixed and index iteration is safe.
        let n = self.ready.len();
        for i in 0..n {
            let c = self.ready[i];
            let slot = &mut self.comps[c.0 as usize];
            slot.evals += 1;
            let mut body = slot
                .body
                .take()
                .expect("component re-entered during its own eval");
            self.stats.evals += 1;
            if self.profiling {
                let t0 = self.profiler.begin();
                {
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        me: c,
                    };
                    body.eval(&mut ctx);
                }
                self.profiler.end(c, t0);
            } else {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    me: c,
                };
                body.eval(&mut ctx);
            }
            self.comps[c.0 as usize].body = Some(body);
        }
        self.ready.clear();
        // Bumping the generation un-queues every component at once.
        self.ready_gen += 1;
    }

    /// Execute all deltas at the current time until quiescent.
    fn settle_now(&mut self) -> Result<(), KernelError> {
        let mut deltas = 0u32;
        loop {
            // Pop the batch of events scheduled for exactly `now`.
            let now = self.core.now;
            let mut batch = std::mem::take(&mut self.pop_scratch);
            self.core.sched.pop_at(now, &mut batch);
            let popped = !batch.is_empty();
            for &ev in batch.iter() {
                match ev.kind {
                    EventKind::Drive(sig, v) => {
                        self.apply(sig, v);
                    }
                    EventKind::Wake(c) => {
                        // A self-scheduled wakeup always dispatches and
                        // always unparks: the component asked for it.
                        if self.core.compiled.built {
                            self.core.compiled.parked[c.0 as usize] = false;
                        }
                        let gen = self.ready_gen;
                        let slot = &mut self.comps[c.0 as usize];
                        if slot.queued_gen != gen {
                            slot.queued_gen = gen;
                            self.ready.push(c);
                        }
                    }
                }
            }
            self.pop_scratch = batch;
            if self.ready.is_empty() && !popped {
                return Ok(());
            }
            self.eval_ready();
            // Apply non-blocking writes; they constitute the next delta.
            // Nothing pushes to `core.pending` while they apply, so the
            // buffer can be taken and handed back without reallocating.
            let mut pending = std::mem::take(&mut self.core.pending);
            self.core.step += 1;
            self.stats.deltas += 1;
            for &(sig, v) in pending.iter() {
                self.apply(sig, v);
            }
            pending.clear();
            debug_assert!(self.core.pending.is_empty());
            self.core.pending = pending;
            if self.core.compiled.filtering && !self.core.compiled.doorbells.is_empty() {
                self.core.compiled.service_doorbells();
            }
            deltas += 1;
            if deltas > DELTA_LIMIT {
                return Err(KernelError::DeltaOverflow {
                    time_ps: self.core.now,
                });
            }
            if self.core.finish_requested {
                return Ok(());
            }
        }
    }

    fn init_components(&mut self) {
        for c in std::mem::take(&mut self.uninitialized) {
            let slot = &mut self.comps[c.0 as usize];
            if slot.queued_gen != self.ready_gen {
                slot.queued_gen = self.ready_gen;
                self.ready.push(c);
            }
        }
    }

    /// Run until `deadline` ps (inclusive of events at the deadline) or
    /// until a component calls `finish`. On return the current time is
    /// `deadline` (unless finished early), so testbench pokes issued
    /// between run calls land when wall-of-code order suggests.
    pub fn run_until(&mut self, deadline: u64) -> Result<(), KernelError> {
        if self.core.compiled.mode.is_compiled() && !self.core.compiled.built {
            self.compile_plan();
        }
        self.init_components();
        let compiled_mode = self.core.compiled.mode.is_compiled();
        loop {
            self.settle_now()?;
            if self.core.finish_requested {
                return Ok(());
            }
            let next = match self.core.sched.next_time() {
                Some(t) => t,
                None => {
                    let t = self.core.now.max(deadline);
                    self.core.now = t;
                    self.core.sched.advance(t);
                    return Ok(());
                }
            };
            debug_assert!(next > self.core.now, "settle_now left same-time events");
            if next > deadline {
                self.core.now = deadline;
                self.core.sched.advance(deadline);
                return Ok(());
            }
            self.core.now = next;
            self.core.sched.advance(next);
            self.core.step += 1;
            self.stats.time_points += 1;
            if compiled_mode {
                if self.core.compiled.filtering {
                    self.core.compiled.stats.steady_points += 1;
                } else {
                    self.core.compiled.stats.fallback_points += 1;
                }
            }
            // Sample scheduler occupancy into the trace on a coarse,
            // deterministic cadence (a simulation-derived counter, so
            // identical runs sample at identical points).
            if self.core.trace.enabled && self.stats.time_points.is_multiple_of(SCHED_SAMPLE_PERIOD)
            {
                let occ = self.core.sched.pending_events() as u64;
                self.core.trace.push(
                    next,
                    TraceKind::Counter,
                    TraceCat::Kernel,
                    "sched.pending",
                    0,
                    occ,
                );
            }
        }
    }

    /// Run for `duration` ps past the current time.
    pub fn run_for(&mut self, duration: u64) -> Result<(), KernelError> {
        let d = self.core.now + duration;
        self.run_until(d)
    }

    /// Execute pending same-time activity without advancing time.
    pub fn settle(&mut self) -> Result<(), KernelError> {
        if self.core.compiled.mode.is_compiled() && !self.core.compiled.built {
            self.compile_plan();
        }
        self.init_components();
        self.settle_now()
    }

    // --- Compiled-plane API (see `crate::compiled`) -------------------

    /// Select the execution mode. Call before the first run; switching
    /// back to [`ExecMode::EventDriven`] mid-run is allowed (it simply
    /// stops filtering and unparks everything), switching *into* a
    /// compiled mode compiles lazily on the next run call.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.core.compiled.mode = mode;
        if !mode.is_compiled() {
            self.core.compiled.unpark_all();
        }
        self.core.compiled.refresh_gate();
    }

    /// The selected execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.core.compiled.mode
    }

    /// Declare `comp` a clocked (sequential-rank) process: its eval is an
    /// observable no-op for any activation that is solely `clk` changing
    /// to other-than-rising. The declaration is a contract; the kernel
    /// skips exactly those activations in compiled mode. Activations from
    /// any other sensitivity (reset lines, data inputs) are unaffected.
    pub fn declare_clocked(&mut self, comp: CompId, clk: SignalId) {
        self.core.compiled.ensure_comps(self.comps.len());
        self.core.compiled.clock_of[comp.0 as usize] = clk.0;
    }

    /// Declare `comp` combinational with the given read/write sets. Feeds
    /// the levelization pass (schedule depth, acyclicity check); has no
    /// dispatch effect of its own.
    pub fn declare_comb(&mut self, comp: CompId, reads: &[SignalId], writes: &[SignalId]) {
        self.core
            .compiled
            .comb_decls
            .push((comp, reads.to_vec(), writes.to_vec()));
    }

    /// Watch `sig` as a dirty-window trigger: while the condition holds,
    /// compiled dispatch falls back to full event-driven semantics (and
    /// every parked component is woken). The current value is inspected
    /// immediately, so watching a signal that is already dirty (e.g. a
    /// reset line that is high, or still `X`) opens a window at once.
    pub fn watch_dirty(&mut self, sig: SignalId, cond: DirtyWatch) {
        let s = &mut self.core.signals[sig.0 as usize];
        match cond {
            DirtyWatch::Truthy => s.cflags |= cflag::WATCH_TRUTHY,
            DirtyWatch::Unknown => s.cflags |= cflag::WATCH_UNKNOWN,
            DirtyWatch::TruthyOrUnknown => s.cflags |= cflag::WATCH_ANY,
        }
        let dirty = (s.cflags & cflag::WATCH_TRUTHY != 0 && s.cur.truthy())
            || (s.cflags & cflag::WATCH_UNKNOWN != 0 && s.cur.has_unknown());
        if dirty && s.cflags & cflag::DIRTY_NOW == 0 {
            s.cflags |= cflag::DIRTY_NOW;
            self.core.compiled.dirty_count += 1;
            if self.core.compiled.dirty_count == 1 && self.core.compiled.mode.is_compiled() {
                self.core.compiled.stats.fallback_entries += 1;
                self.core.compiled.windows.push((self.core.now, u64::MAX));
            }
            self.core.compiled.refresh_gate();
        }
    }

    /// Register a doorbell: a shared flag an out-of-band state owner (a
    /// register file, a request queue) raises on mutation so parked
    /// pollers of that state are woken. Components pass the returned id
    /// to [`Ctx::park_until`].
    pub fn add_doorbell(&mut self, flag: std::rc::Rc<std::cell::Cell<bool>>) -> DoorbellId {
        let id = DoorbellId(self.core.compiled.doorbells.len() as u32);
        self.core.compiled.doorbells.push((flag, Vec::new()));
        id
    }

    /// Build the compiled plan: size the dense per-component tables and
    /// levelize the declared combinational netlist. Called lazily by the
    /// run methods; callable eagerly to front-load the (small) cost.
    pub fn compile_plan(&mut self) {
        let t0 = std::time::Instant::now();
        self.core.compiled.ensure_comps(self.comps.len());
        self.core.compiled.ensure_signals(self.core.signals.len());
        let (levels, cyclic) = self.core.compiled.levelize();
        let cc = &mut self.core.compiled;
        cc.stats.schedule_comps = self.comps.len() as u64;
        cc.stats.seq_rank = cc.clock_of.iter().filter(|&&c| c != NO_CLOCK).count() as u64;
        cc.stats.comb_comps = cc.comb_decls.len() as u64;
        cc.stats.comb_levels = levels;
        cc.stats.comb_cyclic = cyclic;
        cc.built = true;
        cc.refresh_gate();
        cc.stats.compile_nanos = t0.elapsed().as_nanos() as u64;
    }

    /// Compiled-plane statistics; `None` until a plan has been built.
    pub fn compiled_stats(&self) -> Option<CompiledStats> {
        self.core.compiled.built.then_some(self.core.compiled.stats)
    }

    /// Dirty-window fallback intervals as `(entry_ps, exit_ps)` pairs; an
    /// open window reads as `exit_ps == u64::MAX`.
    pub fn fallback_windows(&self) -> &[(u64, u64)] {
        &self.core.compiled.windows
    }

    /// Number of declared signals (lockstep-diff support).
    pub fn signal_count(&self) -> usize {
        self.core.signals.len()
    }

    /// Peek a signal by dense index (lockstep-diff support; pairs with
    /// [`Simulator::signal_count`] and [`Simulator::signal_name`]).
    pub fn peek_index(&self, idx: usize) -> Lv {
        self.core.signals[idx].cur
    }

    /// Order-sensitive FNV-1a digest over every signal's current value
    /// (widths and 4-state planes included). Two simulators built the
    /// same way agree on this digest iff their architectural signal
    /// state is identical — the per-cycle check of the lockstep
    /// equivalence suite.
    pub fn state_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u64| {
            for byte in b.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for s in &self.core.signals {
            eat(s.width as u64);
            eat(s.cur.val_plane());
            eat(s.cur.xz_plane());
        }
        h
    }

    /// Flush the VCD trace (call before dropping if you need the file).
    pub fn flush_vcd(&mut self) -> std::io::Result<()> {
        if let Some(v) = &mut self.vcd {
            v.flush()?;
        }
        Ok(())
    }
}

/// Kernel-level failures, reported by [`Simulator::run_until`] and
/// surfaced unchanged in `autovision`'s `RunOutcome::kernel_error` and
/// `verif`'s recovery campaign — one error type across the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// Combinational oscillation: the delta limit was exceeded at one
    /// time point.
    DeltaOverflow {
        /// The time at which the oscillation occurred.
        time_ps: u64,
    },
}

/// Former name of [`KernelError`], kept as an alias for existing code.
pub type SimError = KernelError;

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::DeltaOverflow { time_ps } => {
                write!(f, "delta-cycle oscillation at t={time_ps} ps")
            }
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, seq: u64) -> Event {
        Event {
            time,
            seq,
            kind: EventKind::Wake(CompId(0)),
        }
    }

    #[test]
    fn wheel_orders_same_timestamp_by_sequence() {
        let mut s = Scheduler::new();
        for seq in [3u64, 1, 2] {
            s.push(ev(500, seq));
        }
        let mut out = Vec::new();
        s.pop_at(500, &mut out);
        let seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [1, 2, 3]);
        assert_eq!(s.next_time(), None);
    }

    #[test]
    fn far_events_migrate_into_the_wheel() {
        let mut s = Scheduler::new();
        let far_time = (WHEEL_SLOTS as u64 + 10) << TICK_SHIFT;
        s.push(ev(far_time, 1));
        assert_eq!(s.len, 0, "beyond the window goes to the heap");
        assert_eq!(s.next_time(), Some(far_time));
        s.advance(far_time - 100);
        assert_eq!(s.len, 1, "migrated once within the window");
        let mut out = Vec::new();
        s.pop_at(far_time, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(s.next_time(), None);
    }

    #[test]
    fn next_time_scans_across_bitmap_words_and_wraps() {
        let mut s = Scheduler::new();
        // Advance so the cursor sits mid-wheel, then schedule an event
        // whose slot index wraps below the cursor.
        let base = (WHEEL_SLOTS as u64 / 2) << TICK_SHIFT;
        s.advance(base);
        let wrapped = ((WHEEL_SLOTS as u64 / 2) + WHEEL_SLOTS as u64 - 3) << TICK_SHIFT;
        s.push(ev(wrapped, 1));
        assert_eq!(s.next_time(), Some(wrapped));
        let near = base + 2048;
        s.push(ev(near, 2));
        assert_eq!(s.next_time(), Some(near));
    }

    #[test]
    fn pop_at_leaves_later_events_in_the_same_slot() {
        let mut s = Scheduler::new();
        // Same tick (0), two different times within it.
        s.push(ev(100, 1));
        s.push(ev(900, 2));
        let mut out = Vec::new();
        s.pop_at(100, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(s.next_time(), Some(900));
    }
}
