//! Minimal Value Change Dump (IEEE 1364 §18) waveform writer.
//!
//! The writer emits a header mapping every kernel signal to a short
//! identifier code, then appends `#time`-stamped value changes as the
//! simulation progresses. Output is buffered; call
//! [`VcdWriter::flush`] (or `Simulator::flush_vcd`) before inspecting the
//! file.

use crate::lv::Lv;
use crate::SignalId;
use std::fs::File;
use std::io::{BufWriter, Result, Write};
use std::path::Path;

pub(crate) struct VcdWriter {
    out: BufWriter<File>,
    codes: Vec<String>,
    widths: Vec<u8>,
    last_time: Option<u64>,
}

/// Generate the printable-ASCII short code VCD uses for signal `n`.
fn code_for(mut n: usize) -> String {
    // Identifier characters are '!' (33) through '~' (126).
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

impl VcdWriter {
    pub fn create(path: impl AsRef<Path>, signals: &[(String, u8)]) -> Result<VcdWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "$timescale 1ps $end")?;
        writeln!(out, "$scope module top $end")?;
        let mut codes = Vec::with_capacity(signals.len());
        let mut widths = Vec::with_capacity(signals.len());
        for (i, (name, width)) in signals.iter().enumerate() {
            let code = code_for(i);
            // VCD identifiers may not contain whitespace; replace
            // hierarchy separators for readability.
            let clean: String = name
                .chars()
                .map(|c| if c.is_whitespace() { '_' } else { c })
                .collect();
            writeln!(out, "$var wire {width} {code} {clean} $end")?;
            codes.push(code);
            widths.push(*width);
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        Ok(VcdWriter {
            out,
            codes,
            widths,
            last_time: None,
        })
    }

    pub fn change(&mut self, time: u64, sig: SignalId, v: Lv) {
        let idx = sig.0 as usize;
        if self.last_time != Some(time) {
            let _ = writeln!(self.out, "#{time}");
            self.last_time = Some(time);
        }
        let code = &self.codes[idx];
        if self.widths[idx] == 1 {
            let _ = writeln!(self.out, "{}{}", v.get(0).to_char(), code);
        } else {
            let mut bits = String::with_capacity(v.width() as usize + 1);
            bits.push('b');
            for i in (0..v.width()).rev() {
                bits.push(v.get(i).to_char());
            }
            let _ = writeln!(self.out, "{bits} {code}");
        }
    }

    pub fn flush(&mut self) -> Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..10_000 {
            let c = code_for(n);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c), "duplicate code at {n}");
        }
    }

    #[test]
    fn code_sequence_starts_compact() {
        assert_eq!(code_for(0), "!");
        assert_eq!(code_for(93), "~");
        assert_eq!(code_for(94), "!!");
    }
}
