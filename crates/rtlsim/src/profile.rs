//! Per-component wall-clock profiling.
//!
//! The paper's §V uses ModelSim's profiler to show that the
//! simulation-only machinery is cheap: 1.4% of simulation time in the
//! engine-wrapper multiplexer and 0.3% in the other ReSim artifacts.
//!
//! The kernel reproduces that measurement with a *sampling* profiler:
//! roughly one evaluation in 2^[`SAMPLE_SHIFT`] (pseudo-random stride,
//! so the sampler cannot alias with the kernel's periodic evaluation
//! order) is timed individually. A component's total is then estimated
//! as its mean sampled duration times its exact eval count, after
//! subtracting the measurement floor — the cheapest mean observed across
//! all components, which for a kernel full of trivial guard-and-return
//! evals is an excellent estimate of the pure clock-read cost. Timing
//! every eval instead would cost more than a trivial eval itself and
//! drown the signal.

use crate::component::CompKind;
use crate::name::Name;
use crate::CompId;
use std::time::{Duration, Instant};

struct Entry {
    kind: CompKind,
    /// Sum of sampled eval durations (raw, including clock-read cost).
    time: Duration,
    /// Number of sampled (timed) evals.
    samples: u64,
    /// Total evals (exact).
    evals: u64,
}

/// Accumulates evaluation time per component.
///
/// Roughly 1 in 2^[`SAMPLE_SHIFT`] evaluations is timed; a component's
/// total is estimated as (mean sampled duration − the cheapest mean
/// observed across all components, which calibrates away the clock-read
/// floor) × its exact eval count.
pub struct Profiler {
    enabled: bool,
    entries: Vec<Entry>,
    tick: u64,
    /// Next tick to sample. Strides are pseudo-random (mean
    /// 2^[`SAMPLE_SHIFT`]) so the sampler cannot alias against the
    /// kernel's periodic evaluation order.
    next_sample: u64,
    lcg: u64,
}

/// log2 of the mean sampling interval.
pub const SAMPLE_SHIFT: u32 = 4;

/// One row of a profiling report.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Component name (interned handle; cloning is cheap).
    pub name: Name,
    /// Component classification.
    pub kind: CompKind,
    /// Cumulative eval wall time.
    pub time: Duration,
    /// Number of evaluations.
    pub evals: u64,
    /// Fraction of total eval time across all components (0..=1).
    pub fraction: f64,
}

impl Profiler {
    pub(crate) fn new() -> Profiler {
        Profiler {
            // Off by default: even sampled clock reads cost measurable
            // kernel throughput. `Simulator::set_profiling` opts in.
            enabled: false,
            entries: Vec::new(),
            tick: 0,
            next_sample: 1,
            lcg: 0x2545_F491_4F6C_DD1D,
        }
    }

    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub(crate) fn register(&mut self, id: CompId, kind: CompKind) {
        debug_assert_eq!(id.0 as usize, self.entries.len());
        self.entries.push(Entry {
            kind,
            time: Duration::ZERO,
            samples: 0,
            evals: 0,
        });
    }

    #[inline]
    pub(crate) fn begin(&mut self) -> Option<Instant> {
        if !self.enabled {
            return None;
        }
        self.tick = self.tick.wrapping_add(1);
        if self.tick >= self.next_sample {
            // Pseudo-random stride in 1..=2^(SHIFT+1)-1, mean 2^SHIFT.
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let stride = 1 + ((self.lcg >> 33) & ((1 << (SAMPLE_SHIFT + 1)) - 2));
            self.next_sample = self.tick + stride;
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn end(&mut self, id: CompId, t0: Option<Instant>) {
        let e = &mut self.entries[id.0 as usize];
        e.evals += 1;
        if let Some(t0) = t0 {
            e.time += t0.elapsed();
            e.samples += 1;
        }
    }

    /// The measurement floor: the cheapest mean sampled duration across
    /// all components (≈ the cost of the timing itself plus a trivial
    /// guard-and-return eval).
    fn floor_secs(&self) -> f64 {
        let m = self
            .entries
            .iter()
            .filter(|e| e.samples >= 8)
            .map(|e| e.time.as_secs_f64() / e.samples as f64)
            .fold(f64::INFINITY, f64::min);
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Estimated net eval time of one entry: (mean sample - floor) x
    /// exact eval count, clamped at zero.
    fn estimate_secs(&self, e: &Entry, floor: f64) -> f64 {
        if e.samples == 0 {
            return 0.0;
        }
        let mean = e.time.as_secs_f64() / e.samples as f64;
        ((mean - floor).max(0.0)) * e.evals as f64
    }

    /// Total estimated eval time across all components.
    pub fn total(&self) -> Duration {
        let floor = self.floor_secs();
        Duration::from_secs_f64(
            self.entries
                .iter()
                .map(|e| self.estimate_secs(e, floor))
                .sum(),
        )
    }

    /// Estimated time attributed to one component.
    pub fn component_time(&self, id: CompId) -> Duration {
        let floor = self.floor_secs();
        Duration::from_secs_f64(self.estimate_secs(&self.entries[id.0 as usize], floor))
    }

    /// Fraction of total eval time spent in components of `kind`.
    pub fn fraction_of_kind(&self, kind: CompKind) -> f64 {
        let floor = self.floor_secs();
        let total: f64 = self
            .entries
            .iter()
            .map(|e| self.estimate_secs(e, floor))
            .sum();
        if total == 0.0 {
            return 0.0;
        }
        let t: f64 = self
            .entries
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| self.estimate_secs(e, floor))
            .sum();
        t / total
    }

    /// Build a full report given component names (from the simulator),
    /// sorted by descending estimated time.
    pub fn report(&self, names: &[(Name, CompKind, u64)]) -> Vec<ProfileRow> {
        let floor = self.floor_secs();
        let total: f64 = self
            .entries
            .iter()
            .map(|e| self.estimate_secs(e, floor))
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        let mut rows: Vec<ProfileRow> = self
            .entries
            .iter()
            .zip(names)
            .map(|(e, (name, kind, _))| {
                let est = self.estimate_secs(e, floor);
                ProfileRow {
                    name: name.clone(),
                    kind: *kind,
                    time: Duration::from_secs_f64(est),
                    evals: e.evals,
                    fraction: est / total,
                }
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.time));
        rows
    }
}
