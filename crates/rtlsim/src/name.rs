//! Interned hierarchical names.
//!
//! The kernel registers thousands of components and signals, and the
//! diagnostics / profiling surfaces used to clone their `String` names on
//! every report. Names are now interned once, at registration, into a
//! `NameArena`; everything else passes a copyable [`NameId`] around and
//! hands out cheaply-cloneable [`Name`] handles (a shared `Arc<str>`),
//! so the hot path never allocates for a name again.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Handle to an interned name in a simulator's name arena.
///
/// `NameId`s are only meaningful for the simulator that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub(crate) u32);

/// A cheaply-cloneable interned name (component or signal).
///
/// Dereferences to `str` and compares against string types directly, so
/// existing `assert_eq!(msg.component, "checker")`-style call sites keep
/// working. Cloning is an atomic reference-count bump, never a string
/// copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Arc<str>);

impl Name {
    /// View as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl From<Name> for String {
    fn from(n: Name) -> String {
        n.0.to_string()
    }
}

/// Deduplicating arena of interned names.
#[derive(Default)]
pub(crate) struct NameArena {
    names: Vec<Name>,
    index: HashMap<Name, NameId>,
}

impl NameArena {
    pub fn new() -> NameArena {
        NameArena::default()
    }

    /// Intern `s`, returning the id of the (possibly pre-existing) entry.
    pub fn intern(&mut self, s: &str) -> NameId {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let name = Name(Arc::from(s));
        let id = NameId(self.names.len() as u32);
        self.names.push(name.clone());
        self.index.insert(name, id);
        id
    }

    /// Resolve an id to its shared name handle.
    #[inline]
    pub fn resolve(&self, id: NameId) -> &Name {
        &self.names[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_resolves() {
        let mut arena = NameArena::new();
        let a = arena.intern("cie.busy");
        let b = arena.intern("me.busy");
        let a2 = arena.intern("cie.busy");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(*arena.resolve(a), "cie.busy");
        assert_eq!(arena.resolve(b).as_str(), "me.busy");
    }

    #[test]
    fn name_compares_like_a_string() {
        let mut arena = NameArena::new();
        let id = arena.intern("testbench");
        let n = arena.resolve(id).clone();
        assert_eq!(n, "testbench");
        assert_eq!(n, String::from("testbench"));
        assert_eq!(format!("{n}"), "testbench");
        assert_eq!(String::from(n.clone()), "testbench");
        assert_eq!(&n[..4], "test");
    }
}
