//! Structured event tracing: a fixed-capacity ring-buffer sink for typed
//! trace events emitted by components and the kernel itself.
//!
//! The observability counterpart of the VCD writer: where a VCD records
//! *every signal toggle*, the trace buffer records *semantic spans* —
//! "SimB transfer for region 1", "isolation window", "ISR", "DMA burst"
//! — that tools like Perfetto / `chrome://tracing` can render as a
//! timeline (the `obs` crate has the exporter).
//!
//! # Zero cost when disabled
//!
//! Tracing is off by default. Every emission helper is a single inlined
//! branch on the buffer's `enabled` flag; no allocation, clock read or
//! formatting happens unless the buffer was explicitly enabled, and
//! enabling it never changes scheduling (the buffer is a pure observer),
//! so simulation results are identical either way.
//!
//! # Determinism
//!
//! A [`TraceEvent`] carries only simulation-derived fields (simulation
//! time, a kernel-assigned sequence number, static names and integer
//! arguments) — no wall-clock reads — so two identical runs produce
//! byte-identical event streams (pinned by `verif`'s determinism test).
//!
//! The buffer is a single-producer ring: when full, the *oldest* events
//! are overwritten and [`TraceBuf::dropped`] counts the loss, so a
//! long-running simulation keeps the most recent window instead of
//! growing without bound.

/// What a trace event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Start of a span (matched by the next `End` with the same name and
    /// track).
    Begin,
    /// End of a span.
    End,
    /// A point event with no duration.
    Instant,
    /// A sampled counter value (the value is in [`TraceEvent::arg`]).
    Counter,
}

/// Coarse category of a trace event — one per instrumented subsystem.
/// The Perfetto exporter maps categories (plus the track id) to threads
/// so each subsystem renders as its own timeline row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCat {
    /// Kernel-internal samples (scheduler occupancy).
    Kernel,
    /// SimB bitstream transfers (ICAP artifact, per region).
    Simb,
    /// ICAP parse phases and strobes.
    Icap,
    /// Region isolation assert/release windows.
    Isolation,
    /// Reconfiguration controller retry/backoff attempts.
    Retry,
    /// DMA bursts.
    Dma,
    /// Accelerator engine start/done activity.
    Engine,
    /// Processor interrupt-service windows.
    Isr,
    /// Extended-portal module swaps.
    Portal,
    /// Software-defined phases (testbench/driver annotations).
    Sw,
}

impl TraceCat {
    /// Stable lower-case label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            TraceCat::Kernel => "kernel",
            TraceCat::Simb => "simb",
            TraceCat::Icap => "icap",
            TraceCat::Isolation => "isolation",
            TraceCat::Retry => "retry",
            TraceCat::Dma => "dma",
            TraceCat::Engine => "engine",
            TraceCat::Isr => "isr",
            TraceCat::Portal => "portal",
            TraceCat::Sw => "sw",
        }
    }
}

/// One recorded event. `Copy` and allocation-free: names are static
/// strings and the only payload is one integer argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time of the event in picoseconds.
    pub time_ps: u64,
    /// Monotonic emission number — total order, including within one
    /// timestamp.
    pub seq: u64,
    /// Span begin/end, instant, or counter sample.
    pub kind: TraceKind,
    /// Subsystem category.
    pub cat: TraceCat,
    /// Event name (static so emission never allocates).
    pub name: &'static str,
    /// Track discriminator within the category — the reconfigurable
    /// region id for per-region spans, 0 where there is only one track.
    pub track: u32,
    /// One free integer argument (word counts, error codes, counter
    /// values...). 0 when unused.
    pub arg: u64,
}

/// Default ring capacity (events). At 40 bytes per event this is ~10 MiB
/// and covers several frames of the case study with room to spare.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

// ---------------------------------------------------------------------
// Coverage extraction
// ---------------------------------------------------------------------
//
// Coverage-guided harnesses reduce an event stream to a *set of keys*:
// each key names one behaviour the run exhibited ("region 1 saw 2..3
// transfers", "an ISR overlapped an isolation window"). The helpers
// below are the stable primitives those maps are built from — a
// deterministic hash and a count coarsener — kept next to the event
// type so every consumer derives identical keys from identical streams.

/// Deterministic 64-bit FNV-1a over a label plus integer parts. The
/// stable identity of one coverage point; never dependent on pointer
/// values, hash-map iteration order or `DefaultHasher` seeds.
pub fn coverage_key(label: &str, parts: &[u64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in label.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(PRIME);
    }
    for p in parts {
        for b in p.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    }
    h
}

/// Coarsen a count into a log₂ bucket: 0, 1, 2 map to themselves, then
/// 3..4 → 3, 5..8 → 4, 9..16 → 5 ... so "one more retry" is novel when
/// retries are rare but not when they number in the hundreds.
pub fn log2_bucket(v: u64) -> u64 {
    match v {
        0..=2 => v,
        _ => 2 + (63 - (v - 1).leading_zeros()) as u64,
    }
}

/// The single-producer ring-buffer sink. Owned by the simulator core;
/// components reach it through `Ctx`'s `trace_*` helpers and testbenches
/// through `Simulator::trace_*`.
pub struct TraceBuf {
    /// Hot-path gate; checked (inlined) before anything else happens.
    pub(crate) enabled: bool,
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the next write (wraps).
    head: usize,
    seq: u64,
    dropped: u64,
}

impl TraceBuf {
    pub(crate) fn new() -> TraceBuf {
        TraceBuf {
            enabled: false,
            buf: Vec::new(),
            capacity: DEFAULT_TRACE_CAPACITY,
            head: 0,
            seq: 0,
            dropped: 0,
        }
    }

    /// Turn the sink on with `capacity` slots (allocated eagerly so the
    /// hot path never reallocates).
    pub(crate) fn enable(&mut self, capacity: usize) {
        assert!(capacity > 0, "trace capacity must be positive");
        self.enabled = true;
        self.capacity = capacity;
        self.buf.clear();
        self.buf.reserve_exact(capacity);
        self.head = 0;
        self.seq = 0;
        self.dropped = 0;
    }

    /// Record one event (caller has already checked `enabled`).
    #[inline]
    pub(crate) fn push(
        &mut self,
        time_ps: u64,
        kind: TraceKind,
        cat: TraceCat,
        name: &'static str,
        track: u32,
        arg: u64,
    ) {
        self.seq += 1;
        let ev = TraceEvent {
            time_ps,
            seq: self.seq,
            kind,
            cat,
            name,
            track,
            arg,
        };
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events in emission order (oldest retained first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever emitted (including overwritten ones).
    pub fn emitted(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = TraceBuf::new();
        t.enable(4);
        for i in 0..6u64 {
            t.push(i * 10, TraceKind::Instant, TraceCat::Sw, "e", 0, i);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.emitted(), 6);
        // Oldest retained first: events 2..6.
        let args: Vec<u64> = evs.iter().map(|e| e.arg).collect();
        assert_eq!(args, [2, 3, 4, 5]);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [3, 4, 5, 6]);
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let t = TraceBuf::new();
        assert!(!t.enabled);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn coverage_keys_are_stable_and_distinct() {
        assert_eq!(coverage_key("a", &[1, 2]), coverage_key("a", &[1, 2]));
        assert_ne!(coverage_key("a", &[1, 2]), coverage_key("a", &[2, 1]));
        assert_ne!(coverage_key("a", &[1]), coverage_key("b", &[1]));
        // Parts must not collide with label bytes by concatenation.
        assert_ne!(coverage_key("a", &[0x62]), coverage_key("ab", &[]));
    }

    #[test]
    fn log2_bucket_coarsens_counts() {
        let cases = [
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
            (4, 3),
            (5, 4),
            (8, 4),
            (9, 5),
            (16, 5),
            (17, 6),
        ];
        for (v, want) in cases {
            assert_eq!(log2_bucket(v), want, "bucket({v})");
        }
    }
}
