//! Free-running clock and reset generators.

use crate::component::{Component, Ctx};
use crate::lv::Lv;
use crate::SignalId;

/// A free-running clock driver.
///
/// The clock starts low at `t=0` and rises at `period/2`, giving
/// downstream logic a clean first posedge. Use one `Clock` per clock
/// domain; the AutoVision DUT has a system clock and a (slower)
/// configuration clock, whose ratio is exactly what bug.dpr.6b is about.
pub struct Clock {
    out: SignalId,
    half_period_ps: u64,
    level: bool,
    started: bool,
}

impl Clock {
    /// Create a clock with the given full period in picoseconds.
    /// Panics if the period is not a positive even number.
    pub fn new(out: SignalId, period_ps: u64) -> Clock {
        assert!(
            period_ps >= 2 && period_ps.is_multiple_of(2),
            "clock period must be even and >= 2 ps"
        );
        Clock {
            out,
            half_period_ps: period_ps / 2,
            level: false,
            started: false,
        }
    }
}

impl Component for Clock {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if !self.started {
            self.started = true;
            ctx.set(self.out, Lv::bit(false));
        } else {
            self.level = !self.level;
            ctx.set(self.out, Lv::bit(self.level));
        }
        let delay = self.half_period_ps;
        ctx.wake_after(delay);
    }
}

/// An active-high reset generator: asserts reset from `t=0` for a fixed
/// number of picoseconds, then deasserts forever.
pub struct ResetGen {
    out: SignalId,
    duration_ps: u64,
    fired: bool,
}

impl ResetGen {
    /// Reset stays asserted for `duration_ps` picoseconds.
    pub fn new(out: SignalId, duration_ps: u64) -> ResetGen {
        ResetGen {
            out,
            duration_ps,
            fired: false,
        }
    }
}

impl Component for ResetGen {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if !self.fired {
            self.fired = true;
            ctx.set(self.out, Lv::bit(true));
            let d = self.duration_ps;
            ctx.wake_after(d);
        } else {
            ctx.set(self.out, Lv::bit(false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::CompKind;
    use crate::sim::Simulator;

    #[test]
    fn clock_toggles_at_half_period() {
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        sim.add_component(
            "clkgen",
            CompKind::Vip,
            Box::new(Clock::new(clk, 10_000)),
            &[],
        );
        sim.run_until(4_999).unwrap();
        assert_eq!(sim.peek_u64(clk), Some(0));
        sim.run_until(5_000).unwrap();
        assert_eq!(sim.peek_u64(clk), Some(1));
        sim.run_until(10_000).unwrap();
        assert_eq!(sim.peek_u64(clk), Some(0));
        sim.run_until(100_000).unwrap();
        // One X->0 initialisation change, then edges at 5 ns intervals.
        assert_eq!(sim.toggle_count(clk), 1 + 20);
    }

    #[test]
    #[should_panic(expected = "period must be even")]
    fn odd_period_rejected() {
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        let _ = Clock::new(clk, 7);
    }

    #[test]
    fn reset_pulse_shape() {
        let mut sim = Simulator::new();
        let rst = sim.signal("rst", 1);
        sim.add_component(
            "rstgen",
            CompKind::Vip,
            Box::new(ResetGen::new(rst, 25_000)),
            &[],
        );
        sim.settle().unwrap();
        assert_eq!(sim.peek_u64(rst), Some(1));
        sim.run_until(24_999).unwrap();
        assert_eq!(sim.peek_u64(rst), Some(1));
        sim.run_until(25_000).unwrap();
        assert_eq!(sim.peek_u64(rst), Some(0));
        sim.run_until(1_000_000).unwrap();
        assert_eq!(sim.peek_u64(rst), Some(0));
        assert_eq!(sim.toggle_count(rst), 2);
    }

    #[test]
    fn two_clock_domains_stay_phase_locked() {
        let mut sim = Simulator::new();
        let fast = sim.signal("fast", 1);
        let slow = sim.signal("slow", 1);
        sim.add_component("f", CompKind::Vip, Box::new(Clock::new(fast, 10_000)), &[]);
        sim.add_component("s", CompKind::Vip, Box::new(Clock::new(slow, 40_000)), &[]);
        sim.run_until(400_000).unwrap();
        // Discount the initial X->0 change on each clock.
        assert_eq!(sim.toggle_count(fast) - 1, 4 * (sim.toggle_count(slow) - 1));
    }
}
