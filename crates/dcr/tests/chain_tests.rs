//! Integration tests for the DCR daisy chain: register access, chain
//! ordering, timeouts, and X corruption from a mid-chain slave — the
//! mechanism behind the paper's "DCR registers inside the RR" bug class.

use dcr::{DcrChainBuilder, DcrHandle, DcrOp, DcrResult, RegFile};
use rtlsim::{Clock, CompKind, ResetGen, SignalId, Simulator};

const PERIOD: u64 = 10_000;

struct Tb {
    sim: Simulator,
    handle: DcrHandle,
    corrupt: SignalId,
    files: Vec<RegFile>,
}

/// Three slaves: engine params at 0x100, icapctrl at 0x200, misc at 0x300.
/// `corrupt_idx` marks one slave as living inside the reconfigurable
/// region (outputs X while `corrupt` is high).
fn testbench(corrupt_idx: Option<usize>) -> Tb {
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    let corrupt = sim.signal_init("rr_reconfiguring", 1, 0);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    sim.add_component(
        "rstgen",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 2 * PERIOD)),
        &[],
    );
    let files = vec![
        RegFile::new(0x100, 8),
        RegFile::new(0x200, 8),
        RegFile::new(0x300, 4),
    ];
    let mut chain = DcrChainBuilder::new(&mut sim, "dcr", clk, rst);
    for (i, (label, rf)) in [
        ("engine", &files[0]),
        ("icap", &files[1]),
        ("misc", &files[2]),
    ]
    .iter()
    .enumerate()
    {
        let x = if corrupt_idx == Some(i) {
            Some(corrupt)
        } else {
            None
        };
        chain.add_slave(label, (*rf).clone(), x);
    }
    let handle = chain.finish();
    Tb {
        sim,
        handle,
        corrupt,
        files,
    }
}

fn run_op(tb: &mut Tb, op: DcrOp) -> DcrResult {
    tb.handle.request(op);
    for _ in 0..200 {
        tb.sim.run_for(PERIOD).unwrap();
        if let Some((done_op, r)) = tb.handle.poll() {
            assert_eq!(done_op, op);
            return r;
        }
    }
    panic!("DCR op {op:?} never completed");
}

#[test]
fn write_then_read_each_slave() {
    let mut tb = testbench(None);
    for (base, val) in [
        (0x100u16, 0xAAAA_0001u32),
        (0x200, 0xBBBB_0002),
        (0x300, 0xCCCC_0003),
    ] {
        assert_eq!(run_op(&mut tb, DcrOp::Write(base, val)), DcrResult::Ok(val));
        assert_eq!(run_op(&mut tb, DcrOp::Read(base)), DcrResult::Ok(val));
    }
    assert!(!tb.sim.has_errors());
    // Hardware-side view matches.
    assert_eq!(tb.files[0].get(0), 0xAAAA_0001);
    assert_eq!(tb.files[1].get(0), 0xBBBB_0002);
    assert_eq!(tb.files[2].get(0), 0xCCCC_0003);
}

#[test]
fn hardware_sees_bus_write_events() {
    let mut tb = testbench(None);
    run_op(&mut tb, DcrOp::Write(0x101, 7));
    run_op(&mut tb, DcrOp::Write(0x102, 9));
    let events = tb.files[0].take_writes();
    assert_eq!(events, vec![(1, 7), (2, 9)]);
}

#[test]
fn unmapped_address_times_out() {
    let mut tb = testbench(None);
    assert_eq!(run_op(&mut tb, DcrOp::Read(0x3FF)), DcrResult::Timeout);
    assert!(tb.sim.has_errors(), "timeout must be reported");
    // The chain still works afterwards.
    tb.sim.take_messages();
    assert_eq!(run_op(&mut tb, DcrOp::Write(0x100, 1)), DcrResult::Ok(1));
}

#[test]
fn back_to_back_requests_complete_in_order() {
    let mut tb = testbench(None);
    tb.handle.request(DcrOp::Write(0x100, 10));
    tb.handle.request(DcrOp::Write(0x101, 11));
    tb.handle.request(DcrOp::Read(0x100));
    tb.handle.request(DcrOp::Read(0x101));
    tb.sim.run_for(300 * PERIOD).unwrap();
    let mut results = Vec::new();
    while let Some(r) = tb.handle.poll() {
        results.push(r);
    }
    assert_eq!(
        results,
        vec![
            (DcrOp::Write(0x100, 10), DcrResult::Ok(10)),
            (DcrOp::Write(0x101, 11), DcrResult::Ok(11)),
            (DcrOp::Read(0x100), DcrResult::Ok(10)),
            (DcrOp::Read(0x101), DcrResult::Ok(11)),
        ]
    );
    assert!(!tb.handle.busy());
}

#[test]
fn corrupted_last_slave_poisons_every_access() {
    // Slave 2 (misc, nearest the master's return path) is inside the RR.
    let mut tb = testbench(Some(2));
    // Clean while the region is not reconfiguring.
    assert_eq!(run_op(&mut tb, DcrOp::Write(0x100, 5)), DcrResult::Ok(5));
    // Start "reconfiguration".
    tb.sim.poke_u64(tb.corrupt, 1);
    // ANY access now corrupts — even one addressed to a static slave,
    // because its response must pass through the X-driving slave.
    assert_eq!(run_op(&mut tb, DcrOp::Read(0x100)), DcrResult::CorruptX);
    assert_eq!(run_op(&mut tb, DcrOp::Read(0x200)), DcrResult::CorruptX);
    assert!(tb.sim.has_errors(), "corruption must be reported");
    // Reconfiguration ends; the chain heals.
    tb.sim.take_messages();
    tb.sim.poke_u64(tb.corrupt, 0);
    assert_eq!(run_op(&mut tb, DcrOp::Read(0x100)), DcrResult::Ok(5));
}

#[test]
fn corrupted_first_slave_poisons_downstream_writes_only() {
    // Slave 0 (engine) is inside the RR; slaves 1 and 2 are downstream of
    // it on the WRITE-data path but replace the response themselves.
    let mut tb = testbench(Some(0));
    assert_eq!(run_op(&mut tb, DcrOp::Write(0x200, 42)), DcrResult::Ok(42));
    tb.sim.poke_u64(tb.corrupt, 1);
    // Reads of downstream slaves still work: the selected slave sources
    // both data and ack itself.
    assert_eq!(run_op(&mut tb, DcrOp::Read(0x200)), DcrResult::Ok(42));
    // But a WRITE to a downstream slave passes its data through the
    // corrupted segment and arrives as X.
    run_op(&mut tb, DcrOp::Write(0x201, 99));
    assert!(
        tb.sim
            .messages()
            .iter()
            .any(|m| m.text.contains("received X data")),
        "downstream write corruption must be reported: {:?}",
        tb.sim.messages()
    );
    // Accessing the corrupted slave itself fails outright.
    assert_eq!(run_op(&mut tb, DcrOp::Read(0x100)), DcrResult::CorruptX);
}

#[test]
fn chain_order_matters_for_blast_radius() {
    // The same bug (DCR regs inside the RR) has a wider blast radius the
    // closer the slave sits to the master's return path — quantify it.
    let blast = |idx: usize| -> usize {
        let mut tb = testbench(Some(idx));
        tb.sim.poke_u64(tb.corrupt, 1);
        [0x100u16, 0x200, 0x300]
            .iter()
            .filter(|a| run_op(&mut tb, DcrOp::Read(**a)) == DcrResult::CorruptX)
            .count()
    };
    assert_eq!(blast(0), 1, "first slave: only itself unreadable");
    assert_eq!(blast(1), 2, "middle slave: itself + upstream responses");
    assert_eq!(blast(2), 3, "last slave: every response corrupted");
}
