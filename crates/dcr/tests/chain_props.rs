//! Property tests: random register layouts and operation sequences on
//! the daisy chain behave exactly like a flat register-map model.

use dcr::{DcrChainBuilder, DcrOp, DcrResult, RegFile};
use proptest::prelude::*;
use rtlsim::{Clock, CompKind, ResetGen, Simulator};
use std::collections::HashMap;

const PERIOD: u64 = 10_000;

#[derive(Debug, Clone)]
struct Layout {
    /// (base, count) per slave, disjoint by construction.
    blocks: Vec<(u16, usize)>,
}

fn arb_layout() -> impl Strategy<Value = Layout> {
    prop::collection::vec((1u16..12, 1usize..6), 1..5).prop_map(|raw| {
        let mut blocks = Vec::new();
        let mut base = 0u16;
        for (gap, count) in raw {
            base += gap;
            blocks.push((base, count));
            base += count as u16;
        }
        Layout { blocks }
    })
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Write { addr: u16, value: u32 },
    Read { addr: u16 },
}

fn arb_ops(layout: &Layout) -> impl Strategy<Value = Vec<Op>> {
    let blocks = layout.blocks.clone();
    let max_addr = blocks.last().map(|(b, c)| b + *c as u16).unwrap_or(1) + 4;
    prop::collection::vec(
        (any::<bool>(), 0..max_addr, any::<u32>()).prop_map(move |(w, addr, value)| {
            if w {
                Op::Write { addr, value }
            } else {
                Op::Read { addr }
            }
        }),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn chain_behaves_like_a_flat_register_map(
        (layout, ops) in arb_layout().prop_flat_map(|l| {
            let ops = arb_ops(&l);
            (Just(l), ops)
        })
    ) {
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        let rst = sim.signal("rst", 1);
        sim.add_component("clk", CompKind::Vip, Box::new(Clock::new(clk, PERIOD)), &[]);
        sim.add_component("rst", CompKind::Vip, Box::new(ResetGen::new(rst, 2 * PERIOD)), &[]);
        let mut chain = DcrChainBuilder::new(&mut sim, "dcr", clk, rst);
        for (i, (base, count)) in layout.blocks.iter().enumerate() {
            chain.add_slave(&format!("s{i}"), RegFile::new(*base, *count), None);
        }
        let handle = chain.finish();

        // Flat reference model.
        let decodes = |addr: u16| layout.blocks.iter().any(|(b, c)| addr >= *b && addr < b + *c as u16);
        let mut model: HashMap<u16, u32> = HashMap::new();

        for op in &ops {
            let dcr_op = match op {
                Op::Write { addr, value } => DcrOp::Write(*addr, *value),
                Op::Read { addr } => DcrOp::Read(*addr),
            };
            handle.request(dcr_op);
            let mut result = None;
            for _ in 0..400 {
                sim.run_for(PERIOD).unwrap();
                if let Some((_, r)) = handle.poll() {
                    result = Some(r);
                    break;
                }
            }
            let result = result.expect("op never completed");
            match op {
                Op::Write { addr, value } => {
                    if decodes(*addr) {
                        prop_assert_eq!(result, DcrResult::Ok(*value));
                        model.insert(*addr, *value);
                    } else {
                        prop_assert_eq!(result, DcrResult::Timeout);
                    }
                }
                Op::Read { addr } => {
                    if decodes(*addr) {
                        let want = model.get(addr).copied().unwrap_or(0);
                        prop_assert_eq!(result, DcrResult::Ok(want));
                    } else {
                        prop_assert_eq!(result, DcrResult::Timeout);
                    }
                }
            }
        }
    }
}
