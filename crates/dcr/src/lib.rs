//! # dcr — the Device Control Register daisy chain
//!
//! On the PowerPC 405 platform the DCR bus is a *daisy chain*: the
//! master's data bus threads through every slave in order, each slave
//! either substituting its own response or passing the upstream value
//! along combinationally. The AutoVision designers moved the engines'
//! DCR registers *out* of the reconfigurable region precisely because a
//! slave caught mid-reconfiguration drives `X` into the chain and
//! corrupts every downstream device — the paper's canonical
//! isolation-family bug (and the reason bug.hw.2's `engine_signature`
//! register had to live in the static region).
//!
//! This crate models that chain at the signal level:
//!
//! * [`DcrChainBuilder`] wires up a master and an ordered list of slaves.
//! * Each slave ([`RegFile`]) is a register block with a shared handle the
//!   owning hardware reads parameters from and posts status through.
//! * The master is driven through a [`DcrHandle`] — the PowerPC bridge
//!   maps `mtdcr`/`mfdcr` onto it, and testbenches use it directly.
//!
//! An access that never returns an ack times out; an access that returns
//! `X` on the ack or data path is reported as chain corruption. Both
//! outcomes surface as kernel error diagnostics, which is how the
//! verification harness *detects* a DCR-in-RR bug.

pub mod chain;
pub mod regfile;

pub use chain::{DcrChainBuilder, DcrHandle, DcrOp, DcrResult};
pub use regfile::RegFile;

/// DCR address width in bits (PPC405: 10-bit DCR space).
pub const DCR_ADDR_BITS: u8 = 10;
/// DCR data width in bits.
pub const DCR_DATA_BITS: u8 = 32;
/// Cycles the master waits for an ack before declaring a timeout.
pub const DCR_TIMEOUT_CYCLES: u32 = 32;
