//! The daisy-chain fabric: master FSM and pass-through slaves.

use crate::regfile::RegFile;
use crate::{DCR_ADDR_BITS, DCR_DATA_BITS, DCR_TIMEOUT_CYCLES};
use rtlsim::{CompKind, Component, Ctx, DoorbellId, Lv, SignalId, Simulator};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// One DCR access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcrOp {
    /// `mfdcr` — read the register at the address.
    Read(u16),
    /// `mtdcr` — write the value to the register at the address.
    Write(u16, u32),
}

/// Outcome of a DCR access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcrResult {
    /// Read data (or the written value echoed for writes).
    Ok(u32),
    /// No slave acknowledged within [`DCR_TIMEOUT_CYCLES`].
    Timeout,
    /// The ack or data path carried `X`/`Z` — the chain is corrupted,
    /// typically by a slave inside a region undergoing reconfiguration.
    CorruptX,
}

struct HandleInner {
    requests: VecDeque<DcrOp>,
    results: VecDeque<(DcrOp, DcrResult)>,
    in_flight: bool,
}

/// Testbench/processor-side handle for issuing DCR operations.
#[derive(Clone)]
pub struct DcrHandle {
    inner: Rc<RefCell<HandleInner>>,
    /// Raised on every [`DcrHandle::request`]; the master parks on this
    /// as a kernel doorbell while its queue is empty.
    pending: Rc<Cell<bool>>,
}

impl DcrHandle {
    fn new() -> DcrHandle {
        DcrHandle {
            inner: Rc::new(RefCell::new(HandleInner {
                requests: VecDeque::new(),
                results: VecDeque::new(),
                in_flight: false,
            })),
            pending: Rc::new(Cell::new(false)),
        }
    }

    /// The request flag, suitable for `Simulator::add_doorbell`.
    pub fn request_flag(&self) -> Rc<Cell<bool>> {
        self.pending.clone()
    }

    /// Queue an access; it executes in order after earlier requests.
    pub fn request(&self, op: DcrOp) {
        self.inner.borrow_mut().requests.push_back(op);
        self.pending.set(true);
    }

    /// Pop the oldest completed access, if any.
    pub fn poll(&self) -> Option<(DcrOp, DcrResult)> {
        self.inner.borrow_mut().results.pop_front()
    }

    /// True while any request is queued or executing.
    pub fn busy(&self) -> bool {
        let i = self.inner.borrow();
        i.in_flight || !i.requests.is_empty()
    }
}

#[derive(Debug, Clone, Copy)]
enum MState {
    Idle,
    Wait { op: DcrOp, cycles: u32 },
}

struct DcrMaster {
    clk: SignalId,
    rst: SignalId,
    abus: SignalId,
    wdata: SignalId,
    rd: SignalId,
    wr: SignalId,
    ret_data: SignalId,
    ret_ack: SignalId,
    handle: DcrHandle,
    state: MState,
    /// Doorbell rung by [`DcrHandle::request`]; the master parks on it
    /// while idle with an empty queue.
    bell: Option<DoorbellId>,
}

impl Component for DcrMaster {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            ctx.set_bit(self.rd, false);
            ctx.set_bit(self.wr, false);
            ctx.set_u64(self.abus, 0);
            ctx.set_u64(self.wdata, 0);
            self.state = MState::Idle;
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        match self.state {
            MState::Idle => {
                let op = self.handle.inner.borrow_mut().requests.pop_front();
                if op.is_none() {
                    // Quiescent: nothing to issue until software queues a
                    // request (doorbell) or reset changes.
                    if let Some(bell) = self.bell {
                        ctx.park_until(&[self.rst], &[bell]);
                    }
                }
                if let Some(op) = op {
                    self.handle.inner.borrow_mut().in_flight = true;
                    match op {
                        DcrOp::Read(a) => {
                            ctx.set_u64(self.abus, a as u64);
                            ctx.set_bit(self.rd, true);
                        }
                        DcrOp::Write(a, v) => {
                            ctx.set_u64(self.abus, a as u64);
                            ctx.set_u64(self.wdata, v as u64);
                            ctx.set_bit(self.wr, true);
                        }
                    }
                    self.state = MState::Wait { op, cycles: 0 };
                }
            }
            MState::Wait { op, cycles } => {
                let ack = ctx.get(self.ret_ack);
                let data = ctx.get(self.ret_data);
                let result = if ack.has_unknown() {
                    Some(DcrResult::CorruptX)
                } else if ack.truthy() {
                    if matches!(op, DcrOp::Read(_)) && data.has_unknown() {
                        Some(DcrResult::CorruptX)
                    } else {
                        Some(DcrResult::Ok(data.to_u64_lossy() as u32))
                    }
                } else if cycles >= DCR_TIMEOUT_CYCLES {
                    Some(DcrResult::Timeout)
                } else {
                    self.state = MState::Wait {
                        op,
                        cycles: cycles + 1,
                    };
                    None
                };
                if let Some(r) = result {
                    match r {
                        DcrResult::CorruptX => {
                            ctx.error(format!("DCR chain corrupted by X during {op:?}"))
                        }
                        DcrResult::Timeout => ctx.error(format!("DCR timeout on {op:?}")),
                        DcrResult::Ok(_) => {}
                    }
                    ctx.set_bit(self.rd, false);
                    ctx.set_bit(self.wr, false);
                    let mut inner = self.handle.inner.borrow_mut();
                    inner.results.push_back((op, r));
                    inner.in_flight = false;
                    self.state = MState::Idle;
                }
            }
        }
    }
}

struct DcrSlave {
    clk: SignalId,
    abus: SignalId,
    rd: SignalId,
    wr: SignalId,
    d_in: SignalId,
    ack_in: SignalId,
    d_out: SignalId,
    ack_out: SignalId,
    regs: RegFile,
    /// When this signal is truthy or unknown, the slave's chain outputs
    /// are driven to `X` — it models the slave's logic being inside a
    /// region that is currently being reconfigured.
    x_when: Option<SignalId>,
    /// Everything the eval reads except `clk`: while the slave is not
    /// selected its outputs are pure passthrough, so it can park until
    /// one of these moves. It must stay awake while selected — the
    /// write commit needs to sample a posedge.
    wake: Vec<SignalId>,
}

impl Component for DcrSlave {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        // Corruption override: region being rewritten.
        if let Some(xs) = self.x_when {
            let v = ctx.get(xs);
            if v.truthy() || v.has_unknown() {
                ctx.set(self.d_out, Lv::xes(DCR_DATA_BITS));
                ctx.set(self.ack_out, Lv::xes(1));
                return;
            }
        }
        let addr = ctx.get(self.abus).to_u64_lossy() as u16;
        let rd = ctx.is_high(self.rd);
        let wr = ctx.is_high(self.wr);
        let sel = (rd || wr) && self.regs.decodes(addr);
        // Clocked write commit (wr is a level; commit once on the first
        // posedge it is seen — the master holds until ack, and ack is
        // combinational, so exactly one posedge samples wr&&sel high
        // before the master deasserts).
        if ctx.rose(self.clk) && wr && sel {
            let d = ctx.get(self.d_in);
            if d.has_unknown() {
                ctx.error(format!(
                    "DCR write to {addr:#x} received X data through the chain"
                ));
            }
            self.regs.bus_write(addr, d.to_u64_lossy() as u32);
        }
        // Combinational chain segment.
        if sel {
            ctx.set_bit(self.ack_out, true);
            if rd {
                ctx.set_u64(self.d_out, self.regs.bus_read(addr) as u64);
            } else {
                ctx.set(self.d_out, ctx.get(self.d_in));
            }
        } else {
            ctx.set(self.ack_out, ctx.get(self.ack_in));
            ctx.set(self.d_out, ctx.get(self.d_in));
            // Not selected: outputs track the chain inputs, all of which
            // are in the wake set, so posedge re-evals are no-ops.
            ctx.park_until(&self.wake, &[]);
        }
    }
}

/// Builds a DCR chain: master, then slaves in attachment order. The
/// *last* attached slave is nearest the master's return path, so `X`
/// from it corrupts every response.
pub struct DcrChainBuilder<'a> {
    sim: &'a mut Simulator,
    name: String,
    clk: SignalId,
    rst: SignalId,
    abus: SignalId,
    wdata: SignalId,
    rd: SignalId,
    wr: SignalId,
    /// Data/ack signal pair at the current chain tail.
    tail_d: SignalId,
    tail_ack: SignalId,
    slave_count: usize,
}

impl<'a> DcrChainBuilder<'a> {
    /// Start a chain. `clk`/`rst` drive the master and write commits.
    pub fn new(sim: &'a mut Simulator, name: &str, clk: SignalId, rst: SignalId) -> Self {
        let abus = sim.signal_init(format!("{name}.abus"), DCR_ADDR_BITS, 0);
        let wdata = sim.signal_init(format!("{name}.wdata"), DCR_DATA_BITS, 0);
        let rd = sim.signal_init(format!("{name}.rd"), 1, 0);
        let wr = sim.signal_init(format!("{name}.wr"), 1, 0);
        // Chain head: master's write data, ack 0.
        let head_ack = sim.signal_init(format!("{name}.ack0"), 1, 0);
        DcrChainBuilder {
            sim,
            name: name.to_string(),
            clk,
            rst,
            abus,
            wdata,
            rd,
            wr,
            tail_d: wdata,
            tail_ack: head_ack,
            slave_count: 0,
        }
    }

    /// Append a register-block slave to the chain. `x_when` (if given)
    /// forces the slave's chain outputs to `X` while that signal is
    /// truthy/unknown — wire the reconfigurable region's "reconfiguring"
    /// strobe here to model DCR registers left inside the region.
    pub fn add_slave(&mut self, label: &str, regs: RegFile, x_when: Option<SignalId>) {
        let i = self.slave_count;
        self.slave_count += 1;
        let d_out = self
            .sim
            .signal(format!("{}.d{}", self.name, i + 1), DCR_DATA_BITS);
        let ack_out = self.sim.signal(format!("{}.ack{}", self.name, i + 1), 1);
        let mut wake = vec![self.abus, self.rd, self.wr, self.tail_d, self.tail_ack];
        if let Some(x) = x_when {
            wake.push(x);
        }
        let slave = DcrSlave {
            clk: self.clk,
            abus: self.abus,
            rd: self.rd,
            wr: self.wr,
            d_in: self.tail_d,
            ack_in: self.tail_ack,
            d_out,
            ack_out,
            regs,
            x_when,
            wake: wake.clone(),
        };
        let mut sens = vec![self.clk];
        sens.extend_from_slice(&wake);
        let comp = self.sim.add_component(
            format!("{}.slave.{}", self.name, label),
            CompKind::UserStatic,
            Box::new(slave),
            &sens,
        );
        // Wrong-edge clk activations only re-run the comb passthrough
        // with unchanged inputs — idempotent, safe to filter.
        self.sim.declare_clocked(comp, self.clk);
        self.tail_d = d_out;
        self.tail_ack = ack_out;
    }

    /// Close the ring: instantiate the master and return its handle.
    pub fn finish(self) -> DcrHandle {
        let handle = DcrHandle::new();
        let bell = self.sim.add_doorbell(handle.request_flag());
        let master = DcrMaster {
            clk: self.clk,
            rst: self.rst,
            abus: self.abus,
            wdata: self.wdata,
            rd: self.rd,
            wr: self.wr,
            ret_data: self.tail_d,
            ret_ack: self.tail_ack,
            handle: handle.clone(),
            state: MState::Idle,
            bell: Some(bell),
        };
        let comp = self.sim.add_component(
            format!("{}.master", self.name),
            CompKind::UserStatic,
            Box::new(master),
            &[self.clk, self.rst],
        );
        self.sim.declare_clocked(comp, self.clk);
        handle
    }
}
