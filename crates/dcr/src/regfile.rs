//! Shared register-file handles connecting DCR slaves to the hardware
//! that owns the registers.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

struct RegInner {
    base: u16,
    regs: Vec<u32>,
    /// Software writes not yet consumed by the owning hardware
    /// (offset, value) — lets command registers trigger actions.
    writes: VecDeque<(u16, u32)>,
}

/// A block of `n` DCR registers starting at DCR address `base`.
///
/// The handle is shared three ways: the DCR slave component services bus
/// reads/writes through it, the owning hardware component reads its
/// parameters and posts status, and the testbench can inspect it.
#[derive(Clone)]
pub struct RegFile {
    inner: Rc<RefCell<RegInner>>,
    /// Raised by [`RegFile::bus_write`] only — never by hardware-side
    /// [`RegFile::set`] — so the owning component can park on a kernel
    /// doorbell without waking itself by posting status.
    dirty: Rc<Cell<bool>>,
}

impl RegFile {
    /// Create a register block of `count` registers at `base`.
    pub fn new(base: u16, count: usize) -> RegFile {
        RegFile {
            inner: Rc::new(RefCell::new(RegInner {
                base,
                regs: vec![0; count],
                writes: VecDeque::new(),
            })),
            dirty: Rc::new(Cell::new(false)),
        }
    }

    /// The bus-write flag, suitable for `Simulator::add_doorbell`. It is
    /// set whenever software writes through the DCR chain and cleared by
    /// the kernel when it services the doorbell.
    pub fn dirty_flag(&self) -> Rc<Cell<bool>> {
        self.dirty.clone()
    }

    /// First DCR address of the block.
    pub fn base(&self) -> u16 {
        self.inner.borrow().base
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.inner.borrow().regs.len()
    }

    /// True when the block has no registers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does this block decode DCR address `addr`?
    pub fn decodes(&self, addr: u16) -> bool {
        let inner = self.inner.borrow();
        addr >= inner.base && ((addr - inner.base) as usize) < inner.regs.len()
    }

    /// Read register `offset` (hardware or testbench side).
    pub fn get(&self, offset: u16) -> u32 {
        self.inner.borrow().regs[offset as usize]
    }

    /// Write register `offset` (hardware posting status; does not queue a
    /// software-write event).
    pub fn set(&self, offset: u16, v: u32) {
        self.inner.borrow_mut().regs[offset as usize] = v;
    }

    /// Bus-side write: stores the value and queues a write event for the
    /// owning hardware.
    pub fn bus_write(&self, addr: u16, v: u32) {
        let mut inner = self.inner.borrow_mut();
        let off = addr - inner.base;
        inner.regs[off as usize] = v;
        inner.writes.push_back((off, v));
        self.dirty.set(true);
    }

    /// Bus-side read.
    pub fn bus_read(&self, addr: u16) -> u32 {
        let inner = self.inner.borrow();
        inner.regs[(addr - inner.base) as usize]
    }

    /// Drain the queued software-write events (owning hardware side).
    pub fn take_writes(&self) -> Vec<(u16, u32)> {
        self.inner.borrow_mut().writes.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_window() {
        let rf = RegFile::new(0x100, 4);
        assert!(rf.decodes(0x100));
        assert!(rf.decodes(0x103));
        assert!(!rf.decodes(0x104));
        assert!(!rf.decodes(0xFF));
        assert_eq!(rf.len(), 4);
        assert!(!rf.is_empty());
    }

    #[test]
    fn bus_writes_queue_events_but_hw_sets_do_not() {
        let rf = RegFile::new(0, 2);
        rf.set(0, 7);
        assert!(rf.take_writes().is_empty());
        rf.bus_write(1, 42);
        assert_eq!(rf.get(1), 42);
        assert_eq!(rf.take_writes(), vec![(1, 42)]);
        assert!(rf.take_writes().is_empty(), "events drain once");
    }

    #[test]
    fn clone_shares_state() {
        let rf = RegFile::new(0, 1);
        let rf2 = rf.clone();
        rf.set(0, 5);
        assert_eq!(rf2.get(0), 5);
        assert_eq!(rf2.bus_read(0), 5);
    }
}
