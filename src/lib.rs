//! # optical-flow-demonstrator
//!
//! A full reproduction of *"RTL Simulation of High Performance Dynamic
//! Reconfiguration: A Video Processing Case Study"* (Gong, Diessel,
//! Paul, Stechele) as a Rust workspace: the ReSim simulation-only layer,
//! the AutoVision Optical Flow Demonstrator it verifies, and every
//! substrate underneath — an RTL simulation kernel, a PLB bus, a DCR
//! daisy chain, a PowerPC-subset ISS, cycle-accurate video engines, and
//! the verification harness that regenerates the paper's tables and
//! figures.
//!
//! This meta-crate re-exports the workspace members; see each crate's
//! documentation for details, and `DESIGN.md` / `EXPERIMENTS.md` at the
//! repository root for the experiment index.
//!
//! ## Quick start
//!
//! ```
//! use autovision::{AvSystem, SimMethod, SystemConfig};
//!
//! // Build the Optical Flow Demonstrator under ReSim-based simulation
//! // (two engines, two partial reconfigurations per frame).
//! let mut sys = AvSystem::build(SystemConfig {
//!     method: SimMethod::Resim,
//!     width: 32,
//!     height: 24,
//!     n_frames: 1,
//!     payload_words: 64,
//!     ..Default::default()
//! });
//! let outcome = sys.run(2_000_000);
//! assert!(outcome.halted && !outcome.hung);
//! assert_eq!(outcome.frames_captured, 1);
//! // Displayed output matches the golden pipeline bit-exactly.
//! let golden = sys.golden_output();
//! assert_eq!(sys.captured.borrow()[0], golden[0]);
//! ```

pub use autovision;
pub use dcr;
pub use engines;
pub use plb;
pub use ppc;
pub use resim;
pub use rtlsim;
pub use verif;
pub use video;
