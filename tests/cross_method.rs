//! Cross-crate integration: the same design under both simulation
//! methods, and the sequencing properties of intra-frame reconfiguration.

use autovision::{AvSystem, SimMethod, SystemConfig};
use verif::probe_high_time;

fn cfg(method: SimMethod) -> SystemConfig {
    SystemConfig::builder()
        .method(method)
        .width(32)
        .height(24)
        .n_frames(3)
        .payload_words(128)
        .seed(99)
        .build()
        .expect("cross-method config is valid")
}

/// ReSim does not change the user design; Virtual Multiplexing hacks it
/// but models the same functional swap. On the clean design both must
/// produce the *identical* displayed frames — and match the golden
/// pipeline.
#[test]
fn both_methods_produce_identical_output_on_the_clean_design() {
    let mut resim = AvSystem::build(cfg(SimMethod::Resim));
    let mut vmux = AvSystem::build(cfg(SimMethod::Vmux));
    assert!(!resim.run(4_000_000).hung);
    assert!(!vmux.run(4_000_000).hung);
    let golden = resim.golden_output();
    let r = resim.captured.borrow();
    let v = vmux.captured.borrow();
    assert_eq!(r.len(), 3);
    assert_eq!(v.len(), 3);
    for t in 0..3 {
        assert_eq!(r[t], v[t], "frame {t} differs between methods");
        assert_eq!(r[t], golden[t], "frame {t} differs from golden");
    }
}

/// Same seed, same config => bit-identical runs (full determinism, a
/// property regression debugging depends on).
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut sys = AvSystem::build(cfg(SimMethod::Resim));
        let out = sys.run(4_000_000);
        let frames = sys.captured.borrow().clone();
        (out.cycles, frames, sys.sim.stats().evals)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "cycle counts differ");
    assert_eq!(a.1, b.1, "output frames differ");
    assert_eq!(a.2, b.2, "kernel eval counts differ");
}

/// Reconfiguration sequencing: isolation must cover every *injection*
/// window (while the SimB payload streams and the region emits X),
/// engines must never be busy while the region reconfigures, and the
/// two reconfigurations per frame must actually take simulated time.
///
/// Note the deliberate distinction: software may legally drop isolation
/// once the controller has written the final word, even though the ICAP
/// is still draining the trailing DESYNC — injection has already ended
/// at the last payload word (Table I).
#[test]
fn reconfiguration_windows_are_isolated_and_engine_free() {
    let mut sys = AvSystem::build(cfg(SimMethod::Resim));
    let reconf = sys.probes.reconfiguring.unwrap();
    let inject = sys.probes.inject.unwrap();
    let dpr = probe_high_time(&mut sys.sim, "p.dpr", reconf);
    let iso = probe_high_time(&mut sys.sim, "p.iso", sys.probes.isolate);

    let cie_busy = sys.probes.cie_busy;
    let me_busy = sys.probes.me_busy;
    let isolate = sys.probes.isolate;
    let violations = std::rc::Rc::new(std::cell::RefCell::new(0u32));
    let vclone = violations.clone();
    sys.sim.add_component(
        "seq_checker",
        rtlsim::CompKind::Vip,
        Box::new(move |ctx: &mut rtlsim::Ctx<'_>| {
            // No engine may run while the region's frames are rewritten.
            if ctx.is_high(reconf) && (ctx.is_high(cie_busy) || ctx.is_high(me_busy)) {
                *vclone.borrow_mut() += 1;
            }
            // Isolation must cover the entire injection window.
            if ctx.is_high(inject) && !ctx.is_high(isolate) {
                *vclone.borrow_mut() += 1;
            }
        }),
        &[reconf, inject, cie_busy, me_busy, isolate],
    );

    assert!(!sys.run(4_000_000).hung);
    assert_eq!(*violations.borrow(), 0, "sequencing violation during DPR");
    let d = *dpr.borrow();
    let i = *iso.borrow();
    // Two reconfigurations per frame, three frames.
    assert_eq!(d.pulses, 6, "DPR windows");
    assert!(i.pulses >= 6, "isolation pulses: {}", i.pulses);
    assert!(
        i.total_ps >= d.total_ps,
        "isolation ({}) must cover reconfiguration ({})",
        i.total_ps,
        d.total_ps
    );
    assert!(d.total_ps > 0, "reconfiguration must take simulated time");
}

/// The displayed frames contain the motion-vector overlay (the software
/// actually drew something on frames after the first). Uses a scene
/// whose golden output provably contains markers.
#[test]
fn output_frames_carry_vector_markers() {
    let mut cfg = cfg(SimMethod::Resim);
    cfg.width = 48;
    cfg.height = 40;
    cfg.scene_objects = 3;
    cfg.seed = 7;
    let mut sys = AvSystem::build(cfg);
    assert!(!sys.run(4_000_000).hung);
    let captured = sys.captured.borrow();
    let inputs = &sys.input_frames;
    // Frame 1+: moving objects => some anchors drawn (255) and endpoint
    // markers (254) that were not in the raw input.
    let mut marker_frames = 0;
    for (out, input) in captured.iter().zip(inputs).skip(1) {
        let diff = out.differing_pixels(input);
        let has_anchor = out.pixels().contains(&255);
        if diff > 0 && has_anchor {
            marker_frames += 1;
        }
    }
    assert!(marker_frames >= 1, "no vector overlay found in any frame");
}
