//! Property-based system tests: the clean design is bit-exact against
//! the golden pipeline across random geometries, seeds and SimB lengths.

use autovision::{AvSystem, SimMethod, SystemConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case is a full-system simulation
    })]

    /// Any small clean configuration completes and matches golden under
    /// ReSim.
    #[test]
    fn clean_resim_system_is_always_bit_exact(
        wq in 4usize..=12,
        h in 16usize..=32,
        payload in 32usize..=512,
        seed in 0u64..1000,
    ) {
        let cfg = SystemConfig {
            method: SimMethod::Resim,
            width: wq * 4,
            height: h,
            n_frames: 2,
            payload_words: payload,
            seed,
            ..Default::default()
        };
        let mut sys = AvSystem::build(cfg);
        let out = sys.run(3_000_000);
        prop_assert!(!out.hung, "hung: {:?}", sys.sim.messages());
        prop_assert_eq!(out.frames_captured, 2);
        prop_assert!(!sys.sim.has_errors(), "{:?}", sys.sim.messages());
        let golden = sys.golden_output();
        let captured = sys.captured.borrow();
        for (t, (got, want)) in captured.iter().zip(&golden).enumerate() {
            prop_assert_eq!(got.differing_pixels(want), 0, "frame {}", t);
        }
    }

    /// Both methods agree on the displayed output for any clean seed.
    #[test]
    fn methods_agree_for_any_seed(seed in 0u64..1000) {
        let build = |method| SystemConfig {
            method,
            width: 32,
            height: 24,
            n_frames: 1,
            payload_words: 64,
            seed,
            ..Default::default()
        };
        let mut a = AvSystem::build(build(SimMethod::Resim));
        let mut b = AvSystem::build(build(SimMethod::Vmux));
        prop_assert!(!a.run(2_000_000).hung);
        prop_assert!(!b.run(2_000_000).hung);
        prop_assert_eq!(&a.captured.borrow()[0], &b.captured.borrow()[0]);
    }
}
