//! Observability-plane guarantees: structured tracing is deterministic
//! and, crucially, *free* — enabling it perturbs nothing the kernel
//! computes, and leaving it disabled records nothing at all.

use autovision::{AvSystem, SimMethod, SystemConfig};
use obs::MetricsRegistry;
use verif::ReconfigTimeline;

fn small_cfg(regions: Option<Vec<autovision::RegionSpec>>) -> SystemConfig {
    let mut b = SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(32)
        .height(24)
        .n_frames(2)
        .payload_words(128);
    if let Some(r) = regions {
        b = b.regions(r);
    }
    b.build().expect("test config is valid")
}

/// Two identical traced runs must produce bit-identical event streams
/// and bit-identical Perfetto exports (no wall-clock leaks into the
/// trace).
#[test]
fn identical_runs_trace_identically() {
    let run = || {
        let mut sys = AvSystem::build(small_cfg(None));
        sys.sim.enable_trace();
        let outcome = sys.run(1_500_000);
        assert!(!outcome.hung);
        sys.sim.trace_events()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "a traced ReSim run emits events");
    assert_eq!(a, b, "event streams differ between identical runs");
    assert_eq!(obs::perfetto::export(&a), obs::perfetto::export(&b));
}

/// Enabling the trace must not change anything the kernel computes:
/// same displayed frames, same eval/delta/toggle/event counters, same
/// backend statistics. This is the kernel-smoke/table2 byte-identity
/// property, checked at the counter level where the bench baselines
/// measure it.
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let run = |trace: bool| {
        let mut sys = AvSystem::build(small_cfg(None));
        if trace {
            sys.sim.enable_trace();
        }
        let outcome = sys.run(1_500_000);
        assert!(!outcome.hung);
        let frames = sys.captured.borrow().clone();
        (sys.sim.stats(), frames, outcome.cycles, sys.backend_stats())
    };
    let (stats_off, frames_off, cycles_off, backend_off) = run(false);
    let (stats_on, frames_on, cycles_on, backend_on) = run(true);
    assert_eq!(stats_off.evals, stats_on.evals, "eval count changed");
    assert_eq!(stats_off.deltas, stats_on.deltas, "delta count changed");
    assert_eq!(stats_off.toggles, stats_on.toggles, "toggle count changed");
    assert_eq!(stats_off.events, stats_on.events, "event count changed");
    assert_eq!(stats_off.time_points, stats_on.time_points);
    assert_eq!(cycles_off, cycles_on);
    assert_eq!(frames_off, frames_on, "displayed frames changed");
    assert_eq!(
        backend_off.total_swaps(),
        backend_on.total_swaps(),
        "backend swap counts changed"
    );
}

/// A disabled trace records nothing — the observer is truly off, not
/// merely unread.
#[test]
fn disabled_trace_stays_empty() {
    let mut sys = AvSystem::build(small_cfg(None));
    let outcome = sys.run(1_500_000);
    assert!(!outcome.hung);
    assert!(!sys.sim.trace_enabled());
    assert!(sys.sim.trace_events().is_empty());
    assert_eq!(sys.sim.trace_dropped(), 0);
}

/// The acceptance scenario: a traced two-region split-pipeline run
/// yields per-region SimB-transfer and isolation-window spans, and a
/// metrics snapshot whose swap counters match the backend statistics.
#[test]
fn split_pipeline_trace_carries_per_region_spans() {
    let mut sys = AvSystem::build(small_cfg(Some(SystemConfig::split_regions())));
    sys.sim.enable_trace();
    let outcome = sys.run(4_000_000);
    assert!(!outcome.hung);

    let events = sys.sim.trace_events();
    let timeline = ReconfigTimeline::from_events(&events);
    let stats = sys.backend_stats();
    assert_eq!(timeline.regions.len(), 2, "both regions traced");
    for (region, backend_region) in timeline.regions.iter().zip(&stats.regions) {
        assert_eq!(region.rr_id, backend_region.rr_id as u32);
        assert_eq!(
            region.swaps.len() as u64,
            backend_region.swaps,
            "rr{} trace swap instants match portal counter",
            region.rr_id
        );
        assert!(
            !region.transfers.is_empty(),
            "rr{} has SimB transfer spans",
            region.rr_id
        );
        assert!(
            !region.isolation.is_empty(),
            "rr{} has isolation-window spans",
            region.rr_id
        );
        assert!(
            region.transfers_isolated(),
            "rr{} transfers fall inside isolation windows",
            region.rr_id
        );
    }

    // The Perfetto export names both regions' tracks.
    let json = obs::perfetto::export(&events);
    assert!(json.contains("\"simb rr1\""));
    assert!(json.contains("\"simb rr2\""));
    assert!(json.contains("\"isolation rr1\""));
    assert!(json.contains("\"isolation rr2\""));

    // Metrics snapshot counters agree with the backend stats.
    let mut reg = MetricsRegistry::new();
    reg.counter("backend.swaps", stats.total_swaps());
    for r in &stats.regions {
        reg.counter(&format!("backend.rr{}.swaps", r.rr_id), r.swaps);
    }
    let snap = reg.snapshot_json();
    assert!(snap.contains(&format!("\"backend.swaps\":{}", stats.total_swaps())));
    for r in &stats.regions {
        assert!(snap.contains(&format!("\"backend.rr{}.swaps\":{}", r.rr_id, r.swaps)));
    }
}
